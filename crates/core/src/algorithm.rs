//! The F-Diam driver (Algorithm 1).
//!
//! Orchestration, in the paper's order:
//!
//! 1. Remove degree-0 vertices (eccentricity 0, Table 4's last column).
//! 2. 2-sweep initial bound (§4.1): BFS from the max-degree vertex `u`,
//!    then BFS from a farthest vertex `w`; `ecc(w)` is the initial
//!    lower bound of the diameter.
//! 3. Winnow a ball of radius `⌊bound/2⌋` around `u` (§4.2).
//! 4. Chain Processing (§4.3).
//! 5. Loop over the remaining active vertices: compute the
//!    eccentricity by BFS; on a new bound, extend the winnowed region
//!    and all eliminated regions (§4.5); otherwise Eliminate around the
//!    vertex (§4.4).
//!
//! The final bound is the exact largest eccentricity over all connected
//! components — the true diameter when the graph is connected.
//!
//! Every stage reports to an [`Observer`]: phase spans
//! ([`Phase::TwoSweep`], [`Phase::Winnow`], [`Phase::Chain`],
//! [`Phase::Eliminate`], [`Phase::EccBfs`]) plus structured events for
//! bound convergence, winnow growth, eliminations, and chains. The
//! driver's own [`StatsCollector`] is
//! always attached (via [`Tee`]) and folds the stream back into
//! [`FdiamStats`], so [`run`] with no external observer produces the
//! same statistics it always did.
//!
//! [`run_concurrent`] replays the design alternative the paper
//! evaluated and rejected (§4.6): computing several eccentricities
//! concurrently instead of parallelizing each BFS. It exists to
//! reproduce that negative result (see the `multi_bfs` bench) and
//! emits the same observer events as [`run`].

use crate::chain::chain_processing;
use crate::config::FdiamConfig;
use crate::eliminate::{eliminate, extend_eliminated};
use crate::observe::StatsCollector;
use crate::result::DiameterResult;
use crate::state::{EccState, Stage};
use crate::stats::FdiamStats;
use crate::winnow::WinnowRegion;
use fdiam_bfs::{
    bfs_eccentricity_hybrid_cancellable, bfs_eccentricity_hybrid_observed,
    bfs_eccentricity_serial_hybrid_cancellable, bfs_eccentricity_serial_hybrid_observed,
    bp64_eccentricities, bp64_eccentricities_cancellable, BfsScratch, BfsSummary, MAX_LANES,
};
use fdiam_graph::{CsrGraph, VertexId};
use fdiam_obs::{
    noop, BoundsSnapshot, CancelToken, Event, Observer, Phase, PhaseSpan, RunId, SpanId, Tee,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// A run stopped cooperatively before producing a result — its
/// [`CancelToken`] was cancelled or its deadline expired. The
/// underlying BFS kernels observe the token at every level barrier, so
/// the computation stops within one BFS level of the request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("run cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

/// A diameter result together with the run's statistics.
#[derive(Clone, Debug)]
pub struct FdiamOutcome {
    pub result: DiameterResult,
    pub stats: FdiamStats,
    /// The run's correlation id: [`FdiamConfig::run_id`] when supplied,
    /// otherwise freshly minted. Every event of the run (and thus every
    /// trace line) carries this id.
    pub run: RunId,
    /// A pair of vertices realizing the reported diameter: the source
    /// of the BFS that established the final bound and a vertex from
    /// that BFS's last frontier. `None` only for the empty graph.
    pub diametral_pair: Option<(VertexId, VertexId)>,
}

/// Runs F-Diam with the given configuration.
pub fn run(g: &CsrGraph, config: &FdiamConfig) -> FdiamOutcome {
    run_with_observer(g, config, noop())
}

/// [`run`] with an external [`Observer`] attached. The observer
/// receives the full event stream (run lifecycle, phase spans, BFS
/// lifecycle, bound updates, per-stage removals); per-level BFS detail
/// is emitted only if the observer asks for it
/// ([`Observer::wants_bfs_detail`]).
pub fn run_with_observer(
    g: &CsrGraph,
    config: &FdiamConfig,
    observer: &dyn Observer,
) -> FdiamOutcome {
    run_driver(g, config, observer, None, None, None).expect("no cancel token")
}

/// [`run_with_observer`] polling `cancel` at every BFS level barrier
/// and between stages. Returns [`Cancelled`] once cancellation (or
/// deadline expiry) is observed; a request whose deadline has already
/// passed stops before the first traversal.
pub fn run_cancellable(
    g: &CsrGraph,
    config: &FdiamConfig,
    observer: &dyn Observer,
    cancel: &CancelToken,
) -> Result<FdiamOutcome, Cancelled> {
    run_driver(g, config, observer, Some(cancel), None, None)
}

/// [`run_cancellable`] borrowing a caller-owned [`BfsScratch`] arena
/// instead of allocating one per run. A long-lived worker (the serving
/// layer's thread pool) keeps one arena per thread: consecutive jobs on
/// the same graph — the common case behind a graph cache — run with
/// zero per-request scratch allocation. The arena is
/// [resized](BfsScratch::ensure) automatically when the graph size
/// changes.
pub fn run_cancellable_with_scratch(
    g: &CsrGraph,
    config: &FdiamConfig,
    observer: &dyn Observer,
    cancel: &CancelToken,
    scratch: &mut BfsScratch,
) -> Result<FdiamOutcome, Cancelled> {
    run_driver(g, config, observer, Some(cancel), None, Some(scratch))
}

/// Runs F-Diam computing up to `batch` eccentricities concurrently in
/// the main loop (each BFS sequential with private visited storage).
/// The paper tried this and found "too much redundant work, as
/// concurrent Eliminate operations would overlap in removing vertices
/// from consideration" (§4.6) — the same effect shows here as wasted
/// BFS on vertices that a batch-mate's Eliminate would have removed.
pub fn run_concurrent(g: &CsrGraph, config: &FdiamConfig, batch: usize) -> FdiamOutcome {
    run_concurrent_with_observer(g, config, batch, noop())
}

/// [`run_concurrent`] with an external [`Observer`] attached; the
/// multi-BFS main loop emits the same events as the published loop
/// (BFS lifecycle events arrive from rayon worker threads).
pub fn run_concurrent_with_observer(
    g: &CsrGraph,
    config: &FdiamConfig,
    batch: usize,
    observer: &dyn Observer,
) -> FdiamOutcome {
    run_driver(g, config, observer, None, Some(batch), None).expect("no cancel token")
}

/// [`run_concurrent_with_observer`] polling `cancel` — the concurrent
/// analogue of [`run_cancellable`]. Every batch-mate's BFS observes the
/// token at its own level barriers, so the whole batch stops within one
/// BFS level.
pub fn run_concurrent_cancellable(
    g: &CsrGraph,
    config: &FdiamConfig,
    batch: usize,
    observer: &dyn Observer,
    cancel: &CancelToken,
) -> Result<FdiamOutcome, Cancelled> {
    run_driver(g, config, observer, Some(cancel), Some(batch), None)
}

/// [`run_concurrent`] under a wall-clock budget.
///
/// The run executes on a *scoped* worker thread while the caller waits
/// on a channel with `timeout`. On expiry the shared [`CancelToken`]
/// (whose deadline is also armed to `timeout`, so the worker
/// self-observes even if the caller is descheduled) is cancelled and
/// the worker is **joined** — it stops within one BFS level and this
/// function returns [`Cancelled`]. No detached thread ever keeps
/// computing after the timeout fires.
pub fn run_concurrent_with_timeout(
    g: &CsrGraph,
    config: &FdiamConfig,
    batch: usize,
    timeout: Duration,
) -> Result<FdiamOutcome, Cancelled> {
    run_concurrent_with_timeout_observed(g, config, batch, timeout, noop())
}

/// [`run_concurrent_with_timeout`] with an external [`Observer`]
/// attached to the worker's run.
pub fn run_concurrent_with_timeout_observed(
    g: &CsrGraph,
    config: &FdiamConfig,
    batch: usize,
    timeout: Duration,
    observer: &dyn Observer,
) -> Result<FdiamOutcome, Cancelled> {
    let token = CancelToken::with_deadline(timeout);
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        let worker_token = token.clone();
        s.spawn(move || {
            let _ = tx.send(run_concurrent_cancellable(
                g,
                config,
                batch,
                observer,
                &worker_token,
            ));
        });
        match rx.recv_timeout(timeout) {
            Ok(res) => res,
            Err(_) => {
                token.cancel();
                // The scope joins the worker either way; recv() returns
                // its Err(Cancelled) once the current level drains.
                rx.recv().unwrap_or(Err(Cancelled))
            }
        }
    })
}

/// Shared entry behind every public `run*` variant: optional
/// cancellation, optional concurrent main loop.
fn run_driver(
    g: &CsrGraph,
    config: &FdiamConfig,
    observer: &dyn Observer,
    cancel: Option<&CancelToken>,
    batch: Option<usize>,
    scratch: Option<&mut BfsScratch>,
) -> Result<FdiamOutcome, Cancelled> {
    if let Some(b) = batch {
        assert!(b >= 1);
    }
    let mut owned_scratch;
    let scratch = match scratch {
        Some(s) => {
            s.ensure(g.num_vertices());
            s
        }
        None => {
            owned_scratch = BfsScratch::new(g.num_vertices());
            &mut owned_scratch
        }
    };
    // Per-worker load accounting exists for observers; an unobserved
    // run (and any serial run) keeps the uninstrumented kernels.
    if observer.enabled() && config.parallel {
        scratch.set_load_accounting(Some(rayon::current_num_threads()));
    } else {
        scratch.set_load_accounting(None);
    }
    let run = config.run_id.unwrap_or_else(RunId::fresh);
    let collector = StatsCollector::default();
    let tee = Tee(&collector, observer);
    let t_total = Instant::now();
    emit_run_start(&tee, g, config, run);
    let Some(mut driver) = Driver::prelude(g, config, &tee, cancel, scratch, run, t_total)? else {
        return Ok(empty_outcome(t_total, &tee, run));
    };
    let loop_result = match (batch, config.lane_batch) {
        (Some(b), _) => driver.main_loop_concurrent(b),
        (None, Some(b)) => driver.main_loop_lanes(b),
        (None, None) => driver.main_loop(),
    };
    if loop_result.is_err() {
        // Cancellation handoff: every bound proven so far stays valid,
        // so a cancelled run's last word is one final "cancelled"
        // snapshot. Anytime consumers (fdiam-serve's deadline path)
        // read it out of their registry before reaping the run; no
        // `run_end` follows.
        driver.publish_snapshot("cancelled");
        return Err(Cancelled);
    }
    Ok(driver.finish(t_total, &collector))
}

/// Publish one certified `[lb, ub]` snapshot. Construction is
/// `Copy`-only — the unobserved path must stay allocation-free (proven
/// by `crates/bfs/tests/scratch_alloc.rs`).
#[allow(clippy::too_many_arguments)]
fn publish_bounds(
    obs: &dyn Observer,
    run: RunId,
    phase: &'static str,
    bfs_count: u64,
    lb: u32,
    ub: u32,
    vertices_remaining: usize,
    started: Instant,
) {
    obs.event(&Event::BoundsUpdate {
        snapshot: BoundsSnapshot {
            run,
            phase,
            bfs_count,
            lb,
            ub,
            vertices_remaining,
            elapsed_nanos: started.elapsed().as_nanos() as u64,
        },
    });
}

/// The trivial diameter upper bound `n − 1`, valid for any graph.
fn trivial_ub(n: usize) -> u32 {
    (n.saturating_sub(1)).min(u32::MAX as usize) as u32
}

fn emit_run_start(obs: &dyn Observer, g: &CsrGraph, config: &FdiamConfig, run: RunId) {
    obs.event(&Event::RunStart {
        run,
        algorithm: if config.parallel {
            "fdiam"
        } else {
            "fdiam-serial"
        },
        n: g.num_vertices(),
        m: g.num_undirected_edges(),
    });
}

/// Shared driver state across the stages of Algorithm 1.
struct Driver<'a> {
    g: &'a CsrGraph,
    config: &'a FdiamConfig,
    obs: &'a dyn Observer,
    cancel: Option<&'a CancelToken>,
    state: EccState,
    scratch: &'a mut BfsScratch,
    /// Reused seed buffer for the §4.5 Eliminate extension scan.
    seeds: Vec<VertexId>,
    winnow: WinnowRegion,
    bound: u32,
    /// Certified diameter upper bound: `n - 1` until the graph is known
    /// connected, then tightened to `min(ub, 2·ecc(v))` after every
    /// eccentricity BFS (the `2·ecc` bound only holds within one
    /// component). Snapshot consumers read `[bound, ub]`.
    ub: u32,
    connected: bool,
    order: Vec<VertexId>,
    diametral_pair: (VertexId, VertexId),
    run: RunId,
    /// Eccentricity BFSes performed so far (2-sweep included); the
    /// x-axis of the convergence curve.
    bfs_count: u64,
    /// The run's `t_total` origin, for `BoundsSnapshot::elapsed_nanos`.
    started: Instant,
}

impl<'a> Driver<'a> {
    /// Stages 0–3: degree-0 removal, 2-sweep, Winnow, Chain Processing.
    /// Returns `Ok(None)` for the empty graph and [`Cancelled`] if the
    /// token fires during (or before) the 2-sweep.
    fn prelude(
        g: &'a CsrGraph,
        config: &'a FdiamConfig,
        obs: &'a dyn Observer,
        cancel: Option<&'a CancelToken>,
        scratch: &'a mut BfsScratch,
        run: RunId,
        started: Instant,
    ) -> Result<Option<Self>, Cancelled> {
        let n = g.num_vertices();
        if n == 0 {
            return Ok(None);
        }
        // An already-expired deadline stops before any work: not even
        // the degree-0 sweep runs.
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return Err(Cancelled);
        }
        let state = EccState::new(n);

        // Stage 0: degree-0 vertices need no computation (ecc = 0).
        for v in g.vertices() {
            if g.degree(v) == 0 {
                state.record(v, 0, Stage::Degree0);
            }
        }

        // Start vertex: max-degree `u`, or vertex 0 under the "no 'u'"
        // ablation (§6.5).
        let u = if config.use_max_degree_start {
            g.max_degree_vertex().expect("n > 0")
        } else {
            0
        };

        // Stage 1: 2-sweep initial bound (§4.1).
        let mut bound = 0u32;
        let mut ub = trivial_ub(n);
        let mut bfs_count = 0u64;
        let mut connected = n == 1;
        let mut diametral_pair = (u, u);
        if state.is_active(u) {
            let _sweep = PhaseSpan::enter(obs, Phase::TwoSweep);
            let r1 = ecc_bfs(g, u, &mut *scratch, config, obs, cancel).ok_or(Cancelled)?;
            state.record(u, r1.eccentricity, Stage::Computed);
            connected = r1.visited == n;
            bound = r1.eccentricity;
            bfs_count += 1;
            if connected {
                ub = ub.min(r1.eccentricity.saturating_mul(2));
            }
            let w = r1.farthest;
            diametral_pair = (u, w);
            if bound > 0 {
                obs.event(&Event::BoundUpdate {
                    old: 0,
                    new: bound,
                    source: u,
                });
            }
            publish_bounds(
                obs,
                run,
                "two_sweep",
                bfs_count,
                bound,
                ub,
                state.active_count(),
                started,
            );
            if state.is_active(w) {
                let Some(r2) = ecc_bfs(g, w, &mut *scratch, config, obs, cancel) else {
                    // The first sweep completed, so `[bound, ub]` is
                    // already a certified non-trivial interval — hand
                    // it off before the cancellation surfaces.
                    publish_bounds(
                        obs,
                        run,
                        "cancelled",
                        bfs_count,
                        bound,
                        ub,
                        state.active_count(),
                        started,
                    );
                    return Err(Cancelled);
                };
                state.record(w, r2.eccentricity, Stage::Computed);
                bfs_count += 1;
                if connected {
                    ub = ub.min(r2.eccentricity.saturating_mul(2));
                }
                if r2.eccentricity > bound {
                    obs.event(&Event::BoundUpdate {
                        old: bound,
                        new: r2.eccentricity,
                        source: w,
                    });
                    bound = r2.eccentricity;
                    diametral_pair = (w, r2.farthest);
                }
                publish_bounds(
                    obs,
                    run,
                    "two_sweep",
                    bfs_count,
                    bound,
                    ub,
                    state.active_count(),
                    started,
                );
            }
        }

        // Stage 2: Winnow a ball of radius ⌊bound/2⌋ around u (§4.2).
        let mut winnow = WinnowRegion::new(u, n);
        if config.use_winnow {
            let _span = PhaseSpan::enter(obs, Phase::Winnow);
            if grow_winnow(g, config, &mut winnow, &state, bound / 2) {
                obs.event(&Event::WinnowGrown { radius: bound / 2 });
            }
        }

        // Stage 3: Chain Processing (§4.3).
        if config.use_chain {
            let _span = PhaseSpan::enter(obs, Phase::Chain);
            let count = chain_processing(g, &state, &mut *scratch);
            obs.event(&Event::ChainsProcessed { count });
        }

        // Visit order of the main loop.
        let order: Vec<VertexId> = match config.visit_order_seed {
            None => (0..n as VertexId).collect(),
            Some(seed) => {
                let mut v: Vec<VertexId> = (0..n as VertexId).collect();
                v.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
                v
            }
        };

        Ok(Some(Self {
            g,
            config,
            obs,
            cancel,
            state,
            scratch,
            seeds: Vec::new(),
            winnow,
            bound,
            ub,
            connected,
            order,
            diametral_pair,
            run,
            bfs_count,
            started,
        }))
    }

    /// Stage 4, as published: one eccentricity BFS at a time.
    fn main_loop(&mut self) -> Result<(), Cancelled> {
        let order = std::mem::take(&mut self.order);
        for &v in &order {
            if !self.state.is_active(v) {
                continue;
            }
            let r = ecc_bfs(
                self.g,
                v,
                &mut *self.scratch,
                self.config,
                self.obs,
                self.cancel,
            )
            .ok_or(Cancelled)?;
            self.state.record(v, r.eccentricity, Stage::Computed);
            if r.eccentricity > self.bound {
                self.diametral_pair = (v, r.farthest);
            }
            self.apply_bounds(v, r.eccentricity);
            self.note_ecc(r.eccentricity);
            self.publish_snapshot("main_loop");
            self.obs.event(&Event::Progress {
                active: self.state.active_count(),
                bound: self.bound,
            });
        }
        Ok(())
    }

    /// Stage 4, the rejected alternative: compute up to `batch`
    /// eccentricities concurrently, then apply Winnow/Eliminate updates
    /// sequentially. Batch-mates that a fresh Eliminate would have
    /// removed have already burned a full BFS — the redundant work the
    /// paper observed.
    fn main_loop_concurrent(&mut self, batch: usize) -> Result<(), Cancelled> {
        use rayon::prelude::*;
        let order = std::mem::take(&mut self.order);
        let mut cursor = 0usize;
        while cursor < order.len() {
            // Collect the next batch of active vertices.
            let mut todo: Vec<VertexId> = Vec::with_capacity(batch);
            while cursor < order.len() && todo.len() < batch {
                let v = order[cursor];
                cursor += 1;
                if self.state.is_active(v) {
                    todo.push(v);
                }
            }
            if todo.is_empty() {
                continue;
            }
            let results: Vec<Option<(VertexId, u32, VertexId)>> = {
                // One span around the whole batch: the stage timing
                // stays wall-clock (not summed across workers), exactly
                // as the pre-observer driver measured it.
                let _span = PhaseSpan::enter(self.obs, Phase::EccBfs);
                todo.par_iter()
                    .map(|&v| {
                        let (e, far) = local_bfs_eccentricity(self.g, v, self.obs, self.cancel)?;
                        Some((v, e, far))
                    })
                    .collect()
            };
            // A cancelled batch-mate poisons the whole batch: completed
            // results from the same batch are discarded rather than
            // folded into a state we are abandoning anyway.
            for r in results {
                let (v, e, far) = r.ok_or(Cancelled)?;
                self.state.record(v, e, Stage::Computed);
                if e > self.bound {
                    self.diametral_pair = (v, far);
                }
                self.apply_bounds(v, e);
                self.note_ecc(e);
            }
            // One snapshot per batch: the fold is sequential, so the
            // batch boundary is the first point the bounds are settled.
            self.publish_snapshot("main_loop");
            self.obs.event(&Event::Progress {
                active: self.state.active_count(),
                bound: self.bound,
            });
        }
        Ok(())
    }

    /// Stage 4, bit-parallel ([`FdiamConfig::lane_batch`]): up to
    /// `batch` remaining vertices share one 64-lane traversal
    /// ([`bp64_eccentricities`]), then the results fold in sequentially
    /// — the same batch-boundary semantics as
    /// [`Driver::main_loop_concurrent`], but the batch shares its edge
    /// scans instead of re-running them per source. Per-lane
    /// `BfsStart`/`BfsEnd` events keep the trace and
    /// `stats.ecc_computations` accounting one-entry-per-source.
    fn main_loop_lanes(&mut self, batch: usize) -> Result<(), Cancelled> {
        let batch = batch.clamp(1, MAX_LANES);
        let order = std::mem::take(&mut self.order);
        let mut cursor = 0usize;
        let mut todo: Vec<VertexId> = Vec::with_capacity(batch);
        while cursor < order.len() {
            todo.clear();
            while cursor < order.len() && todo.len() < batch {
                let v = order[cursor];
                cursor += 1;
                if self.state.is_active(v) {
                    todo.push(v);
                }
            }
            if todo.is_empty() {
                continue;
            }
            let summary = {
                let _span = PhaseSpan::enter(self.obs, Phase::EccBfs);
                match self.cancel {
                    Some(t) => bp64_eccentricities_cancellable(self.g, &todo, self.scratch, t)
                        .ok_or(Cancelled)?,
                    None => bp64_eccentricities(self.g, &todo, self.scratch),
                }
            };
            for (k, &v) in todo.iter().enumerate() {
                let e = summary.ecc[k];
                if self.obs.enabled() {
                    let span = SpanId::fresh();
                    self.obs.event(&Event::BfsStart { source: v, span });
                    self.obs.event(&Event::BfsEnd {
                        source: v,
                        eccentricity: e,
                        visited: summary.visited[k] as usize,
                        span,
                    });
                }
                self.state.record(v, e, Stage::Computed);
                if e > self.bound {
                    self.diametral_pair = (v, summary.farthest[k]);
                }
                self.apply_bounds(v, e);
                self.note_ecc(e);
            }
            self.publish_snapshot("main_loop");
            self.obs.event(&Event::Progress {
                active: self.state.active_count(),
                bound: self.bound,
            });
        }
        Ok(())
    }

    /// Bound bookkeeping after `ecc(v) = e` (Algorithm 1 lines 13–21).
    fn apply_bounds(&mut self, v: VertexId, e: u32) {
        let obs = self.obs;
        if e > self.bound {
            let old = self.bound;
            self.bound = e;
            obs.event(&Event::BoundUpdate {
                old,
                new: e,
                source: v,
            });
            if self.config.use_winnow {
                let _span = PhaseSpan::enter(obs, Phase::Winnow);
                if grow_winnow(self.g, self.config, &mut self.winnow, &self.state, e / 2) {
                    obs.event(&Event::WinnowGrown { radius: e / 2 });
                }
            }
            if self.config.use_eliminate {
                let _span = PhaseSpan::enter(obs, Phase::Eliminate);
                let removed = extend_eliminated(
                    self.g,
                    &self.state,
                    &mut *self.scratch,
                    &mut self.seeds,
                    old,
                    self.bound,
                );
                obs.event(&Event::EliminateRun {
                    removed,
                    extension: true,
                });
            }
        } else if e < self.bound && self.config.use_eliminate {
            let _span = PhaseSpan::enter(obs, Phase::Eliminate);
            let removed = eliminate(
                self.g,
                &self.state,
                &mut *self.scratch,
                v,
                e,
                self.bound,
                Stage::Eliminate,
            );
            obs.event(&Event::EliminateRun {
                removed,
                extension: false,
            });
        }
        // e == bound: the ecc write already removed v.
    }

    /// Account one finished eccentricity BFS: bump the sweep counter and
    /// tighten `ub` via `diameter ≤ 2·ecc(v)` (connected graphs only —
    /// per-component eccentricities say nothing about the other
    /// components). `ub ≥ bound` is preserved: `2·ecc(v) ≥ diameter ≥
    /// bound` in a connected graph.
    fn note_ecc(&mut self, e: u32) {
        self.bfs_count += 1;
        if self.connected {
            self.ub = self.ub.min(e.saturating_mul(2));
        }
    }

    fn publish_snapshot(&self, phase: &'static str) {
        publish_bounds(
            self.obs,
            self.run,
            phase,
            self.bfs_count,
            self.bound,
            self.ub,
            self.state.active_count(),
            self.started,
        );
    }
}

fn grow_winnow(
    g: &CsrGraph,
    config: &FdiamConfig,
    winnow: &mut WinnowRegion,
    state: &EccState,
    radius: u32,
) -> bool {
    if config.full_rewinnow {
        winnow.rewinnow_to(g, state, radius, config.parallel)
    } else {
        winnow.extend_to(g, state, radius, config.parallel)
    }
}

fn ecc_bfs(
    g: &CsrGraph,
    v: VertexId,
    scratch: &mut BfsScratch,
    config: &FdiamConfig,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Option<BfsSummary> {
    let _span = PhaseSpan::enter(obs, Phase::EccBfs);
    match (config.parallel, cancel) {
        (true, None) => Some(bfs_eccentricity_hybrid_observed(
            g,
            v,
            scratch,
            &config.bfs,
            obs,
        )),
        (true, Some(t)) => bfs_eccentricity_hybrid_cancellable(g, v, scratch, &config.bfs, obs, t),
        // The paper's serial code is also direction-optimized (§7) —
        // the top-down/bottom-up switch is orthogonal to parallelism.
        (false, None) => Some(bfs_eccentricity_serial_hybrid_observed(
            g,
            v,
            scratch,
            &config.bfs,
            obs,
        )),
        (false, Some(t)) => {
            bfs_eccentricity_serial_hybrid_cancellable(g, v, scratch, &config.bfs, obs, t)
        }
    }
}

/// Self-contained sequential eccentricity BFS with private visited
/// storage — used by the concurrent main loop, where tasks cannot share
/// the epoch-based [`VisitMarks`]. Returns the eccentricity and one
/// farthest vertex, or `None` once `cancel` is observed (polled once
/// per level, like the scratch kernels; an aborted traversal emits no
/// `BfsEnd`). Emits the same BFS lifecycle (and detail, when requested)
/// events as the shared-marks kernels.
fn local_bfs_eccentricity(
    g: &CsrGraph,
    source: VertexId,
    obs: &dyn Observer,
    cancel: Option<&CancelToken>,
) -> Option<(u32, VertexId)> {
    let span = if obs.enabled() {
        SpanId::fresh()
    } else {
        SpanId::NONE
    };
    if obs.enabled() {
        obs.event(&Event::BfsStart { source, span });
    }
    let detail = obs.wants_bfs_detail();
    let mut visited_marks = vec![false; g.num_vertices()];
    visited_marks[source as usize] = true;
    let mut visited = 1usize;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    loop {
        if cancel.is_some_and(|t| t.is_cancelled()) {
            return None;
        }
        next.clear();
        let mut edges_scanned = 0u64;
        for &v in &frontier {
            edges_scanned += g.neighbors(v).len() as u64;
            for &n in g.neighbors(v) {
                if !visited_marks[n as usize] {
                    visited_marks[n as usize] = true;
                    next.push(n);
                }
            }
        }
        if detail {
            obs.event(&Event::BfsLevel {
                level: level + 1,
                frontier: next.len(),
                edges_scanned,
                bottom_up: false,
                span,
            });
        }
        if next.is_empty() {
            if obs.enabled() {
                obs.event(&Event::BfsEnd {
                    source,
                    eccentricity: level,
                    visited,
                    span,
                });
            }
            // Min-id farthest vertex, matching the deterministic
            // choice of the scratch kernels' `BfsSummary::farthest`.
            return Some((level, *frontier.iter().min().expect("frontier non-empty")));
        }
        visited += next.len();
        level += 1;
        std::mem::swap(&mut frontier, &mut next);
    }
}

fn empty_outcome(t_total: Instant, obs: &dyn Observer, run: RunId) -> FdiamOutcome {
    let mut stats = FdiamStats::default();
    stats.timings.total = t_total.elapsed();
    publish_bounds(obs, run, "done", 0, 0, 0, 0, t_total);
    obs.event(&Event::RunEnd {
        run,
        diameter: 0,
        connected: true,
        nanos: stats.timings.total.as_nanos() as u64,
    });
    FdiamOutcome {
        result: DiameterResult {
            largest_cc_diameter: 0,
            connected: true,
        },
        stats,
        run,
        diametral_pair: None,
    }
}

impl Driver<'_> {
    fn finish(self, t_total: Instant, collector: &StatsCollector) -> FdiamOutcome {
        let counts = self.state.stage_counts();
        debug_assert_eq!(
            counts[Stage::None as usize],
            0,
            "every vertex must be removed or computed by termination"
        );
        let mut stats = FdiamStats::default();
        collector.fill(&mut stats);
        stats.removed.winnow = counts[Stage::Winnow as usize];
        stats.removed.eliminate = counts[Stage::Eliminate as usize];
        stats.removed.chain = counts[Stage::Chain as usize];
        stats.removed.degree0 = counts[Stage::Degree0 as usize];
        stats.removed.computed = counts[Stage::Computed as usize];
        stats.timings.total = t_total.elapsed();
        if let Some(load) = self.scratch.load() {
            let s = load.summary();
            self.obs.event(&Event::WorkerLoad {
                workers: s.workers,
                total_edges: s.total_edges,
                max_busy_nanos: s.max_busy_nanos,
                mean_busy_nanos: s.mean_busy_nanos,
                imbalance: s.imbalance,
            });
        }
        self.obs.event(&Event::RemovalSummary {
            winnow: stats.removed.winnow,
            eliminate: stats.removed.eliminate,
            chain: stats.removed.chain,
            degree0: stats.removed.degree0,
            computed: stats.removed.computed,
        });
        // Final certified snapshot: termination proves `bound` exact,
        // so the interval collapses regardless of how loose the running
        // `2·ecc` upper bound was (or `n − 1`, when disconnected).
        publish_bounds(
            self.obs,
            self.run,
            "done",
            self.bfs_count,
            self.bound,
            self.bound,
            0,
            self.started,
        );
        self.obs.event(&Event::RunEnd {
            run: self.run,
            diameter: self.bound,
            connected: self.connected,
            nanos: stats.timings.total.as_nanos() as u64,
        });

        FdiamOutcome {
            result: DiameterResult {
                largest_cc_diameter: self.bound,
                connected: self.connected,
            },
            stats,
            run: self.run,
            diametral_pair: Some(self.diametral_pair),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_bfs::{bfs_eccentricity_serial, VisitMarks};
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::disjoint_union;

    fn oracle(g: &CsrGraph) -> u32 {
        let mut marks = VisitMarks::new(g.num_vertices());
        g.vertices()
            .map(|v| bfs_eccentricity_serial(g, v, &mut marks).eccentricity)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn concurrent_matches_sequential() {
        for g in [
            path(30),
            grid2d(6, 7),
            barabasi_albert(150, 3, 2),
            road_like(120, 0.1, 3),
            disjoint_union(&cycle(9), &star(7)),
        ] {
            let expect = oracle(&g);
            for batch in [1, 2, 4, 16] {
                let out = run_concurrent(&g, &FdiamConfig::serial(), batch);
                assert_eq!(
                    out.result.largest_cc_diameter,
                    expect,
                    "batch {batch} on n={}",
                    g.num_vertices()
                );
                assert_eq!(out.stats.removed.total(), g.num_vertices());
            }
        }
    }

    #[test]
    fn lane_batched_matches_sequential() {
        for g in [
            path(30),
            grid2d(6, 7),
            barabasi_albert(150, 3, 2),
            road_like(120, 0.1, 3),
            disjoint_union(&cycle(9), &star(7)),
        ] {
            let expect = oracle(&g);
            for batch in [1, 2, 16, 64] {
                let cfg = FdiamConfig::serial().with_lane_batch(batch);
                let out = run(&g, &cfg);
                assert_eq!(
                    out.result.largest_cc_diameter,
                    expect,
                    "lane batch {batch} on n={}",
                    g.num_vertices()
                );
                assert_eq!(out.stats.removed.total(), g.num_vertices());
                // The diametral pair certificate stays valid.
                let (s, t) = out.diametral_pair.unwrap();
                assert!((s as usize) < g.num_vertices());
                assert!((t as usize) < g.num_vertices());
            }
        }
    }

    #[test]
    fn lane_batched_snapshots_converge_and_count_lanes() {
        let g = grid2d(12, 9);
        let cfg = FdiamConfig::serial().with_lane_batch(32);
        let r = SnapshotRecorder::new();
        let out = run_with_observer(&g, &cfg, &r);
        assert_convergence_curve(&r.snapshots(), out.result.largest_cc_diameter);

        // Each lane is one logical eccentricity computation in both the
        // stats and the event stream.
        let rec = Recorder::new();
        let out = run_with_observer(&g, &cfg, &rec);
        assert_eq!(rec.count("bfs_end"), out.stats.ecc_computations);
        assert_eq!(rec.count("bfs_start"), rec.count("bfs_end"));
    }

    #[test]
    fn lane_batched_cancellation() {
        let g = grid2d(15, 15);
        let cfg = FdiamConfig::serial().with_lane_batch(16);
        let live = CancelToken::new();
        let a = run(&g, &cfg);
        let b = run_cancellable(&g, &cfg, noop(), &live).expect("live token");
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.ecc_computations, b.stats.ecc_computations);
        let expired = CancelToken::with_deadline(Duration::ZERO);
        assert_eq!(
            run_cancellable(&g, &cfg, noop(), &expired).err(),
            Some(Cancelled)
        );
    }

    #[test]
    fn concurrent_does_redundant_work() {
        // On an input where Eliminate prunes aggressively, large batches
        // must compute at least as many (typically more) eccentricities:
        // batch-mates can no longer benefit from each other's Eliminate.
        let g = road_like(900, 0.15, 5);
        let solo = run(&g, &FdiamConfig::serial());
        let batched = run_concurrent(&g, &FdiamConfig::serial(), 32);
        assert_eq!(
            solo.result.largest_cc_diameter,
            batched.result.largest_cc_diameter
        );
        assert!(
            batched.stats.ecc_computations >= solo.stats.ecc_computations,
            "batched {} < solo {}",
            batched.stats.ecc_computations,
            solo.stats.ecc_computations
        );
    }

    #[test]
    fn batch_one_equals_run() {
        let g = barabasi_albert(200, 4, 9);
        let a = run(&g, &FdiamConfig::serial());
        let b = run_concurrent(&g, &FdiamConfig::serial(), 1);
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.ecc_computations, b.stats.ecc_computations);
        assert_eq!(a.stats.removed, b.stats.removed);
    }

    #[test]
    #[should_panic]
    fn zero_batch_rejected() {
        run_concurrent(&path(3), &FdiamConfig::serial(), 0);
    }

    use std::sync::Mutex;

    /// Records event names in arrival order.
    struct Recorder(Mutex<Vec<&'static str>>);

    impl Recorder {
        fn new() -> Self {
            Recorder(Mutex::new(Vec::new()))
        }
        fn count(&self, name: &str) -> usize {
            self.0
                .lock()
                .unwrap()
                .iter()
                .filter(|n| **n == name)
                .count()
        }
    }

    impl Observer for Recorder {
        fn event(&self, e: &Event<'_>) {
            self.0.lock().unwrap().push(e.name());
        }
        fn wants_bfs_detail(&self) -> bool {
            false
        }
    }

    #[test]
    fn observer_sees_lifecycle_and_counters_match_stats() {
        // Small + big component: the small one's vertices have ecc
        // below the bound, forcing Eliminate runs.
        let g = disjoint_union(&grid2d(10, 10), &grid2d(3, 3));
        let r = Recorder::new();
        let out = run_with_observer(&g, &FdiamConfig::serial(), &r);
        assert_eq!(out.result.largest_cc_diameter, 18);

        assert_eq!(r.count("run_start"), 1);
        assert_eq!(r.count("run_end"), 1);
        // The event stream and FdiamStats are two views of one run.
        assert_eq!(r.count("bfs_end"), out.stats.ecc_computations);
        assert_eq!(r.count("winnow"), out.stats.winnow_calls);
        assert_eq!(r.count("eliminate"), out.stats.eliminate_calls);
        assert!(
            out.stats.eliminate_calls > 0,
            "small component must eliminate"
        );
        assert!(r.count("bound_update") >= 1);
        assert!(r.count("progress") >= 1);
    }

    /// Collects every [`BoundsSnapshot`] in arrival order.
    struct SnapshotRecorder(Mutex<Vec<BoundsSnapshot>>);

    impl SnapshotRecorder {
        fn new() -> Self {
            SnapshotRecorder(Mutex::new(Vec::new()))
        }
        fn snapshots(&self) -> Vec<BoundsSnapshot> {
            self.0.lock().unwrap().clone()
        }
    }

    impl Observer for SnapshotRecorder {
        fn event(&self, e: &Event<'_>) {
            if let Event::BoundsUpdate { snapshot } = e {
                self.0.lock().unwrap().push(*snapshot);
            }
        }
        fn wants_bfs_detail(&self) -> bool {
            false
        }
    }

    /// The driver's published snapshot stream must form a certified,
    /// monotone convergence curve ending in a zero-gap "done" snapshot.
    fn assert_convergence_curve(snaps: &[BoundsSnapshot], diameter: u32) {
        assert!(!snaps.is_empty(), "at least the final snapshot");
        let mut prev: Option<BoundsSnapshot> = None;
        for s in snaps {
            assert!(s.lb <= s.ub, "lb {} > ub {} in {:?}", s.lb, s.ub, s);
            assert!(s.lb <= diameter, "lb exceeds final diameter: {s:?}");
            assert!(s.ub >= diameter, "ub below final diameter: {s:?}");
            if let Some(p) = prev {
                assert!(s.lb >= p.lb, "lower bound regressed: {p:?} -> {s:?}");
                assert!(s.ub <= p.ub, "upper bound loosened: {p:?} -> {s:?}");
                assert!(s.bfs_count >= p.bfs_count);
                assert_eq!(s.run, p.run, "one run, one id");
            }
            prev = Some(*s);
        }
        let last = snaps.last().unwrap();
        assert_eq!(last.phase, "done");
        assert_eq!(last.lb, diameter);
        assert_eq!(last.ub, diameter);
        assert_eq!(last.vertices_remaining, 0);
    }

    #[test]
    fn bounds_snapshots_converge_serial() {
        let g = grid2d(12, 9);
        let r = SnapshotRecorder::new();
        let out = run_with_observer(&g, &FdiamConfig::serial(), &r);
        let snaps = r.snapshots();
        assert_convergence_curve(&snaps, out.result.largest_cc_diameter);
        // Every snapshot belongs to this run, with a two-sweep prefix.
        assert!(snaps.iter().all(|s| s.run == out.run));
        assert_eq!(snaps[0].phase, "two_sweep");
        assert!(snaps[0].bfs_count >= 1);
    }

    #[test]
    fn bounds_snapshots_converge_parallel_and_concurrent() {
        let g = barabasi_albert(300, 3, 5);
        let baseline = run(&g, &FdiamConfig::serial());
        let d = baseline.result.largest_cc_diameter;

        let r = SnapshotRecorder::new();
        run_with_observer(&g, &FdiamConfig::parallel(), &r);
        assert_convergence_curve(&r.snapshots(), d);

        let c = SnapshotRecorder::new();
        run_concurrent_with_observer(&g, &FdiamConfig::serial(), 8, &c);
        assert_convergence_curve(&c.snapshots(), d);
    }

    #[test]
    fn bounds_snapshots_on_disconnected_graph_keep_trivial_ub() {
        // `2·ecc` is invalid across components: the running ub must stay
        // at `n − 1` until the final certified snapshot collapses it.
        let g = disjoint_union(&grid2d(10, 10), &grid2d(3, 3));
        let n = g.num_vertices() as u32;
        let r = SnapshotRecorder::new();
        let out = run_with_observer(&g, &FdiamConfig::serial(), &r);
        let snaps = r.snapshots();
        assert_convergence_curve(&snaps, out.result.largest_cc_diameter);
        for s in &snaps[..snaps.len() - 1] {
            assert_eq!(s.ub, n - 1, "running ub must stay trivial: {s:?}");
        }
    }

    #[test]
    fn empty_graph_publishes_single_certified_snapshot() {
        let g = CsrGraph::empty(0);
        let r = SnapshotRecorder::new();
        run_with_observer(&g, &FdiamConfig::serial(), &r);
        let snaps = r.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_convergence_curve(&snaps, 0);
    }

    #[test]
    fn observer_run_matches_unobserved_run() {
        let g = barabasi_albert(300, 3, 5);
        let r = Recorder::new();
        let a = run(&g, &FdiamConfig::serial());
        let b = run_with_observer(&g, &FdiamConfig::serial(), &r);
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats.ecc_computations, b.stats.ecc_computations);
        assert_eq!(a.stats.winnow_calls, b.stats.winnow_calls);
        assert_eq!(a.stats.eliminate_calls, b.stats.eliminate_calls);
        assert_eq!(a.stats.chains_processed, b.stats.chains_processed);
        assert_eq!(a.stats.removed, b.stats.removed);
    }

    #[test]
    fn concurrent_loop_emits_same_event_kinds() {
        let g = road_like(200, 0.1, 4);
        let seq = Recorder::new();
        let conc = Recorder::new();
        let a = run_with_observer(&g, &FdiamConfig::serial(), &seq);
        let b = run_concurrent_with_observer(&g, &FdiamConfig::serial(), 8, &conc);
        assert_eq!(a.result, b.result);
        for name in ["run_start", "bfs_start", "bfs_end", "progress", "run_end"] {
            assert!(
                conc.count(name) > 0,
                "concurrent loop must emit {name} events"
            );
        }
        assert_eq!(conc.count("bfs_end"), b.stats.ecc_computations);
    }

    #[test]
    fn cancellable_with_live_token_matches_plain_run() {
        let g = barabasi_albert(250, 3, 8);
        let token = CancelToken::new();
        for cfg in [FdiamConfig::serial(), FdiamConfig::parallel()] {
            let a = run(&g, &cfg);
            let b = run_cancellable(&g, &cfg, noop(), &token).expect("live token never cancels");
            assert_eq!(a.result, b.result);
            assert_eq!(a.stats.ecc_computations, b.stats.ecc_computations);
            assert_eq!(a.stats.removed, b.stats.removed);
        }
        let c = run_concurrent(&g, &FdiamConfig::serial(), 8);
        let d = run_concurrent_cancellable(&g, &FdiamConfig::serial(), 8, noop(), &token)
            .expect("live token never cancels");
        assert_eq!(c.result, d.result);
    }

    #[test]
    fn pooled_scratch_matches_plain_run_and_resizes_across_graphs() {
        let token = CancelToken::new();
        let mut scratch = BfsScratch::new(0);
        for g in [grid2d(13, 17), barabasi_albert(300, 3, 5), grid2d(5, 5)] {
            let cfg = FdiamConfig::serial();
            let baseline = run(&g, &cfg);
            for _ in 0..2 {
                let out = run_cancellable_with_scratch(&g, &cfg, noop(), &token, &mut scratch)
                    .expect("live token never cancels");
                assert_eq!(out.result, baseline.result);
            }
            assert_eq!(scratch.len(), g.num_vertices());
        }
    }

    #[test]
    fn expired_deadline_stops_before_any_traversal() {
        let g = grid2d(20, 20);
        let token = CancelToken::with_deadline(Duration::ZERO);
        let r = Recorder::new();
        let out = run_cancellable(&g, &FdiamConfig::serial(), &r, &token);
        assert_eq!(out.err(), Some(Cancelled));
        // The run was admitted (run_start) but no traversal completed
        // and no run_end claims success.
        assert_eq!(r.count("run_start"), 1);
        assert_eq!(r.count("bfs_end"), 0);
        assert_eq!(r.count("run_end"), 0);
    }

    #[test]
    fn mid_run_cancel_stops_the_main_loop() {
        // Cancel from inside the event stream once a few eccentricities
        // are in: the next level barrier must abort the run.
        struct CancelAfter {
            token: CancelToken,
            after: usize,
            ends: Mutex<usize>,
        }
        impl Observer for CancelAfter {
            fn event(&self, e: &Event<'_>) {
                if e.name() == "bfs_end" {
                    let mut n = self.ends.lock().unwrap();
                    *n += 1;
                    if *n == self.after {
                        self.token.cancel();
                    }
                }
            }
        }
        let g = grid2d_torus(12, 12); // every ecc equal: many BFS runs
        let obs = CancelAfter {
            token: CancelToken::new(),
            after: 3,
            ends: Mutex::new(0),
        };
        let token = obs.token.clone();
        let out = run_cancellable(&g, &FdiamConfig::serial(), &obs, &token);
        assert_eq!(out.err(), Some(Cancelled));
        let completed = *obs.ends.lock().unwrap();
        assert_eq!(
            completed, 3,
            "the traversal in flight at cancel time must not complete"
        );
    }

    #[test]
    fn cancelled_run_hands_off_a_final_certified_snapshot() {
        // Cancellation must not throw converged bounds away: the last
        // bounds_update of a cancelled run carries phase "cancelled"
        // with the interval proven so far — still bracketing the true
        // diameter and tighter than the trivial `n − 1` — and no
        // run_end follows. fdiam-serve's anytime mode is built on this.
        struct CancelAndRecord {
            token: CancelToken,
            ends: Mutex<usize>,
            snaps: Mutex<Vec<BoundsSnapshot>>,
            run_ends: Mutex<usize>,
        }
        impl Observer for CancelAndRecord {
            fn event(&self, e: &Event<'_>) {
                if let Event::BoundsUpdate { snapshot } = e {
                    self.snaps.lock().unwrap().push(*snapshot);
                }
                match e.name() {
                    "bfs_end" => {
                        let mut n = self.ends.lock().unwrap();
                        *n += 1;
                        if *n == 3 {
                            self.token.cancel();
                        }
                    }
                    "run_end" => *self.run_ends.lock().unwrap() += 1,
                    _ => {}
                }
            }
        }
        let g = grid2d_torus(12, 12); // true diameter 12, every ecc 12
        let obs = CancelAndRecord {
            token: CancelToken::new(),
            ends: Mutex::new(0),
            snaps: Mutex::new(Vec::new()),
            run_ends: Mutex::new(0),
        };
        let token = obs.token.clone();
        let out = run_cancellable(&g, &FdiamConfig::serial(), &obs, &token);
        assert_eq!(out.err(), Some(Cancelled));
        assert_eq!(*obs.run_ends.lock().unwrap(), 0);

        let snaps = obs.snaps.lock().unwrap();
        let last = snaps.last().expect("three sweeps published snapshots");
        assert_eq!(last.phase, "cancelled");
        assert!(last.bfs_count >= 3);
        assert!(last.lb <= 12 && 12 <= last.ub, "bracket lost: {last:?}");
        assert!(last.lb > 0, "three sweeps certify a positive lb");
        let n = g.num_vertices() as u32;
        assert!(last.ub < n - 1, "ub must beat the trivial bound");
        // The handoff republishes the proven state, never regresses it.
        if snaps.len() >= 2 {
            let prev = snaps[snaps.len() - 2];
            assert!(last.lb >= prev.lb && last.ub <= prev.ub);
        }
    }

    #[test]
    fn timeout_run_matches_unbounded_when_budget_is_generous() {
        let g = barabasi_albert(200, 3, 1);
        let a = run_concurrent(&g, &FdiamConfig::serial(), 4);
        let b =
            run_concurrent_with_timeout(&g, &FdiamConfig::serial(), 4, Duration::from_secs(600))
                .expect("10-minute budget on a 200-vertex graph");
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn timed_out_concurrent_worker_observes_cancellation() {
        // Zero budget: recv_timeout fires immediately, the token is
        // cancelled, and the *joined* worker reports Err(Cancelled)
        // itself — run_start with no run_end proves the worker started
        // and stopped early rather than being abandoned mid-flight.
        let g = grid2d(40, 40);
        let r = Recorder::new();
        let out =
            run_concurrent_with_timeout_observed(&g, &FdiamConfig::serial(), 8, Duration::ZERO, &r);
        assert_eq!(out.err(), Some(Cancelled));
        assert_eq!(r.count("run_start"), 1, "worker must have started");
        assert_eq!(r.count("run_end"), 0, "worker must not run to completion");
    }

    #[test]
    fn empty_graph_still_reports_run_end() {
        let r = Recorder::new();
        let out = run_with_observer(&CsrGraph::empty(0), &FdiamConfig::serial(), &r);
        assert_eq!(out.result.largest_cc_diameter, 0);
        assert_eq!(r.count("run_start"), 1);
        assert_eq!(r.count("run_end"), 1);
    }

    #[test]
    fn leaf_phase_durations_bounded_by_total() {
        let g = grid2d(12, 12);
        let out = run(&g, &FdiamConfig::serial());
        let t = &out.stats.timings;
        let leaf_sum = t.ecc_bfs + t.winnow + t.chain + t.eliminate;
        assert!(
            leaf_sum <= t.total,
            "leaf stages {leaf_sum:?} exceed total {:?}",
            t.total
        );
    }
}
