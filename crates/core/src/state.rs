//! Per-vertex eccentricity state.
//!
//! F-Diam encodes "removed from consideration" directly in the
//! eccentricity array: "any write to a vertex's eccentricity not only
//! sets the eccentricity but also removes the vertex from
//! consideration" (§4). A vertex is *active* while its entry is
//! [`ACTIVE`]; any smaller value is a valid eccentricity upper bound
//! (exact when written by a BFS). Chain Processing uses pseudo-bounds
//! just below [`PSEUDO_MAX`] — the paper's `INT_MAX − 1` — and Winnow
//! marks vertices with [`WINNOWED`].
//!
//! Alongside the value, each vertex carries a [`Stage`] tag recording
//! which stage *first* removed it; this feeds the paper's Table 4
//! breakdown.

use fdiam_graph::VertexId;
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};

/// Sentinel: vertex still active (eccentricity not yet bounded).
pub const ACTIVE: u32 = u32::MAX;
/// Pseudo-bound base used by Chain Processing (the paper's `INT_MAX − 1`).
pub const PSEUDO_MAX: u32 = u32::MAX - 1;
/// Marker written by Winnow. Winnowed vertices need no meaningful upper
/// bound — Theorem 2 guarantees a still-active twin for any of them
/// that has maximum eccentricity.
pub const WINNOWED: u32 = u32::MAX - 2;

/// Which stage removed a vertex from consideration (Table 4 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Still active, or never removed (graph fully processed only when
    /// no vertex carries this tag).
    None = 0,
    Winnow = 1,
    Eliminate = 2,
    Chain = 3,
    /// Degree-0 vertex: eccentricity 0, no computation needed.
    Degree0 = 4,
    /// Eccentricity computed exactly by a BFS.
    Computed = 5,
}

impl Stage {
    fn from_u8(x: u8) -> Stage {
        match x {
            1 => Stage::Winnow,
            2 => Stage::Eliminate,
            3 => Stage::Chain,
            4 => Stage::Degree0,
            5 => Stage::Computed,
            _ => Stage::None,
        }
    }
}

/// The eccentricity/state array shared by all F-Diam stages.
pub struct EccState {
    ecc: Vec<AtomicU32>,
    tag: Vec<AtomicU8>,
    /// Vertices still active. Maintained so progress reporting can read
    /// the count in O(1) instead of scanning the array.
    remaining: AtomicUsize,
}

impl EccState {
    /// All vertices start active.
    pub fn new(n: usize) -> Self {
        Self {
            ecc: (0..n).map(|_| AtomicU32::new(ACTIVE)).collect(),
            tag: (0..n).map(|_| AtomicU8::new(Stage::None as u8)).collect(),
            remaining: AtomicUsize::new(n),
        }
    }

    /// Number of vertices still active.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.ecc.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ecc.is_empty()
    }

    /// Current recorded value ([`ACTIVE`] if none).
    #[inline]
    pub fn value(&self, v: VertexId) -> u32 {
        self.ecc[v as usize].load(Ordering::Relaxed)
    }

    /// True while the vertex still needs its eccentricity computed.
    #[inline]
    pub fn is_active(&self, v: VertexId) -> bool {
        self.value(v) == ACTIVE
    }

    /// Unconditionally records `value` for `v` with stage attribution
    /// going to the *first* remover. Used by Eliminate (the paper
    /// writes eliminated bounds unconditionally so that the frontier of
    /// every eliminated region carries exactly the bound it was
    /// eliminated with — the seeds for later incremental extension,
    /// §4.5).
    #[inline]
    pub fn record(&self, v: VertexId, value: u32, stage: Stage) {
        let old = self.ecc[v as usize].swap(value, Ordering::Relaxed);
        if old == ACTIVE {
            self.tag[v as usize].store(stage as u8, Ordering::Relaxed);
            self.remaining.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Removes `v` only if still active; returns whether this call did
    /// the removal. Used by Winnow: winnowing carries no bound
    /// information, so overwriting an exact eccentricity or an
    /// Eliminate frontier value would only destroy extension seeds.
    #[inline]
    pub fn record_if_active(&self, v: VertexId, value: u32, stage: Stage) -> bool {
        let won = self.ecc[v as usize]
            .compare_exchange(ACTIVE, value, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if won {
            self.tag[v as usize].store(stage as u8, Ordering::Relaxed);
            self.remaining.fetch_sub(1, Ordering::Relaxed);
        }
        won
    }

    /// Re-activates a vertex (Chain Processing keeps the chain tip
    /// active after eliminating the region around the chain's end,
    /// Algorithm 4 line 9).
    #[inline]
    pub fn reactivate(&self, v: VertexId) {
        let old = self.ecc[v as usize].swap(ACTIVE, Ordering::Relaxed);
        self.tag[v as usize].store(Stage::None as u8, Ordering::Relaxed);
        if old != ACTIVE {
            self.remaining.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stage that first removed `v`.
    #[inline]
    pub fn stage(&self, v: VertexId) -> Stage {
        Stage::from_u8(self.tag[v as usize].load(Ordering::Relaxed))
    }

    /// All vertices whose recorded value equals `value` — the seed scan
    /// of the incremental Eliminate extension (§4.5: "place all
    /// vertices with an eccentricity bound that is equal to the old
    /// bound value onto a worklist").
    pub fn vertices_with_value(&self, value: u32) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.vertices_with_value_into(value, &mut out);
        out
    }

    /// [`Self::vertices_with_value`] into a reused buffer (cleared
    /// first, capacity kept), so the per-bound-update seed scan in the
    /// main loop allocates nothing in steady state.
    pub fn vertices_with_value_into(&self, value: u32, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend((0..self.ecc.len() as VertexId).filter(|&v| self.value(v) == value));
    }

    /// First active vertex with id ≥ `from`, if any (Algorithm 1
    /// lines 7–11).
    pub fn next_active(&self, from: VertexId) -> Option<VertexId> {
        (from..self.ecc.len() as VertexId).find(|&v| self.is_active(v))
    }

    /// Counts per removal stage, indexed by [`Stage`] discriminant
    /// (length 6).
    pub fn stage_counts(&self) -> [usize; 6] {
        let mut counts = [0usize; 6];
        for t in &self.tag {
            counts[t.load(Ordering::Relaxed) as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_active() {
        let s = EccState::new(3);
        assert!(s.is_active(0));
        assert_eq!(s.value(2), ACTIVE);
        assert_eq!(s.stage(1), Stage::None);
    }

    #[test]
    fn record_sets_value_and_first_stage() {
        let s = EccState::new(2);
        s.record(0, 5, Stage::Eliminate);
        assert!(!s.is_active(0));
        assert_eq!(s.value(0), 5);
        assert_eq!(s.stage(0), Stage::Eliminate);
        // overwrite keeps first attribution
        s.record(0, 7, Stage::Chain);
        assert_eq!(s.value(0), 7);
        assert_eq!(s.stage(0), Stage::Eliminate);
    }

    #[test]
    fn record_if_active_only_once() {
        let s = EccState::new(1);
        assert!(s.record_if_active(0, WINNOWED, Stage::Winnow));
        assert!(!s.record_if_active(0, WINNOWED, Stage::Winnow));
        assert_eq!(s.stage(0), Stage::Winnow);
    }

    #[test]
    fn record_if_active_preserves_existing_value() {
        let s = EccState::new(1);
        s.record(0, 4, Stage::Computed);
        assert!(!s.record_if_active(0, WINNOWED, Stage::Winnow));
        assert_eq!(s.value(0), 4);
    }

    #[test]
    fn reactivate_clears() {
        let s = EccState::new(1);
        s.record(0, 9, Stage::Chain);
        s.reactivate(0);
        assert!(s.is_active(0));
        assert_eq!(s.stage(0), Stage::None);
    }

    #[test]
    fn seed_scan_finds_exact_values() {
        let s = EccState::new(5);
        s.record(1, 7, Stage::Eliminate);
        s.record(3, 7, Stage::Computed);
        s.record(4, 6, Stage::Eliminate);
        assert_eq!(s.vertices_with_value(7), vec![1, 3]);
        let mut buf = vec![99]; // _into clears stale content
        s.vertices_with_value_into(7, &mut buf);
        assert_eq!(buf, vec![1, 3]);
        s.vertices_with_value_into(42, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn next_active_skips_removed() {
        let s = EccState::new(4);
        s.record(0, 1, Stage::Computed);
        s.record(1, 1, Stage::Eliminate);
        assert_eq!(s.next_active(0), Some(2));
        assert_eq!(s.next_active(3), Some(3));
        s.record(2, 1, Stage::Eliminate);
        s.record(3, 1, Stage::Eliminate);
        assert_eq!(s.next_active(0), None);
    }

    #[test]
    fn stage_counts_tally() {
        let s = EccState::new(4);
        s.record(0, 0, Stage::Degree0);
        s.record(1, 3, Stage::Computed);
        s.record_if_active(2, WINNOWED, Stage::Winnow);
        let c = s.stage_counts();
        assert_eq!(c[Stage::None as usize], 1);
        assert_eq!(c[Stage::Degree0 as usize], 1);
        assert_eq!(c[Stage::Computed as usize], 1);
        assert_eq!(c[Stage::Winnow as usize], 1);
    }

    #[test]
    fn sentinels_are_distinct_and_ordered() {
        const { assert!(WINNOWED < PSEUDO_MAX) };
        const { assert!(PSEUDO_MAX < ACTIVE) };
    }

    #[test]
    fn active_count_tracks_all_transitions() {
        let s = EccState::new(4);
        assert_eq!(s.active_count(), 4);
        s.record(0, 2, Stage::Computed);
        assert_eq!(s.active_count(), 3);
        s.record(0, 3, Stage::Eliminate); // overwrite: no double-count
        assert_eq!(s.active_count(), 3);
        assert!(s.record_if_active(1, WINNOWED, Stage::Winnow));
        assert!(!s.record_if_active(1, WINNOWED, Stage::Winnow));
        assert_eq!(s.active_count(), 2);
        s.reactivate(0);
        assert_eq!(s.active_count(), 3);
        s.reactivate(2); // already active: no change
        assert_eq!(s.active_count(), 3);
    }
}
