//! Metamorphic verification of F-Diam itself: apply the testkit's
//! diameter-effect-known transforms to a spread of bases and assert
//! the *predicted* diameter (computed analytically, not re-derived)
//! under every F-Diam configuration — including the stage-disabling
//! ones, since Winnow/Eliminate/Chain are exactly the optimizations a
//! transform could confuse.

use fdiam_core::{diameter_with, FdiamConfig};
use fdiam_graph::generators::{
    barabasi_albert, cycle, grid2d, kronecker_graph500, lollipop, road_like,
};
use fdiam_graph::transform::with_pendant_path;
use fdiam_graph::CsrGraph;
use fdiam_testkit::{assert_metamorphic, metamorphic_cases, Oracle};

fn bases() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("cycle", cycle(14)),
        ("grid", grid2d(5, 9)),
        ("lollipop", lollipop(6, 7)),
        ("ba", barabasi_albert(150, 3, 2)),
        ("road", road_like(120, 0.3, 4)),
        // disconnected with isolated vertices
        ("kron", kronecker_graph500(6, 10, 9)),
    ]
}

#[test]
fn full_metamorphic_suite_over_bases() {
    for (name, g) in bases() {
        assert_metamorphic(name, &g, 0xF_D1A);
    }
}

#[test]
fn predictions_hold_with_stages_disabled() {
    // The transform predictions must hold for every driver variant,
    // not just the default pipeline.
    let configs = [
        ("no-winnow", FdiamConfig::serial().without_winnow()),
        ("no-eliminate", FdiamConfig::serial().without_eliminate()),
        ("no-chain", FdiamConfig::serial().without_chain()),
        (
            "no-maxdeg",
            FdiamConfig::parallel().without_max_degree_start(),
        ),
        ("paper-bfs", FdiamConfig::parallel().with_paper_bfs()),
    ];
    for (name, base) in [
        ("lollipop", lollipop(5, 6)),
        ("kron", kronecker_graph500(6, 8, 4)),
    ] {
        for case in metamorphic_cases(&base, 7) {
            for (cname, cfg) in &configs {
                let r = diameter_with(&case.graph, cfg).result;
                assert_eq!(
                    (r.largest_cc_diameter, r.connected),
                    (case.expected_largest_cc, case.expected_connected),
                    "{name}/{}/{cname}",
                    case.name
                );
            }
        }
    }
}

#[test]
fn pendant_chain_growth_is_linear() {
    // Iterating the pendant-path transform k times from a max-ecc
    // vertex grows the diameter by exactly 1 each step — a chain of
    // predictions that stresses Chain Processing (§4.3) directly,
    // since each step lengthens the pendant chain the stage must walk.
    let mut g = grid2d(4, 6);
    let mut expected = Oracle::compute(&g).largest_cc_diameter;
    for _ in 0..6 {
        let o = Oracle::compute(&g);
        let vstar = o
            .eccentricities
            .iter()
            .position(|&e| e == o.largest_cc_diameter)
            .unwrap() as u32;
        g = with_pendant_path(&g, vstar, 1);
        expected += 1;
        let r = diameter_with(&g, &FdiamConfig::serial()).result;
        assert_eq!(r.diameter(), Some(expected));
    }
}
