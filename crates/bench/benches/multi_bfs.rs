//! Design-choice ablation (§4.6): the paper "also tried running
//! multiple BFS traversals in parallel. However, this did not yield a
//! speedup because it resulted in too much redundant work". This bench
//! reproduces that negative result: `run_concurrent` with growing batch
//! sizes against the adopted design (each BFS internally parallel).

use criterion::{criterion_group, criterion_main, Criterion};
use fdiam_core::FdiamConfig;
use fdiam_graph::generators::{barabasi_albert, road_like};
use std::hint::black_box;

fn bench_multi_bfs(c: &mut Criterion) {
    let inputs = [
        ("ba_6k", barabasi_albert(6_000, 5, 1)),
        ("road_6k", road_like(6_000, 0.15, 2)),
    ];
    for (name, g) in &inputs {
        let mut group = c.benchmark_group(format!("multi_bfs/{name}"));
        group.bench_function("adopted_parallel_bfs", |b| {
            b.iter(|| black_box(fdiam_core::run(g, &FdiamConfig::parallel()).result))
        });
        for batch in [2usize, 8, 32] {
            group.bench_function(format!("concurrent_batch_{batch}"), |b| {
                b.iter(|| {
                    black_box(fdiam_core::run_concurrent(g, &FdiamConfig::serial(), batch).result)
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_bfs
}
criterion_main!(benches);
