//! Criterion version of Figure 6 / Table 2: all five diameter codes on
//! one representative input per topology class (scaled down so the full
//! bench completes in minutes). The *ordering* of the codes per input
//! is the paper's headline claim: F-Diam ≥ everything, often by orders
//! of magnitude.

use criterion::{criterion_group, criterion_main, Criterion};
use fdiam_baselines::{graph_diameter, ifub};
use fdiam_core::FdiamConfig;
use fdiam_graph::generators::{barabasi_albert, grid2d, kronecker_graph500, road_like};
use std::hint::black_box;

fn bench_codes(c: &mut Criterion) {
    let inputs = [
        ("grid_48x48", grid2d(48, 48)),
        ("ba_4k_m6", barabasi_albert(4_000, 6, 1)),
        ("road_4k", road_like(4_000, 0.1, 2)),
        ("kron_s11", kronecker_graph500(11, 12, 3)),
    ];
    for (name, g) in &inputs {
        let mut group = c.benchmark_group(format!("fig6/{name}"));
        group.bench_function("fdiam_ser", |b| {
            b.iter(|| black_box(fdiam_core::diameter_with(g, &FdiamConfig::serial()).result))
        });
        group.bench_function("fdiam_par", |b| {
            b.iter(|| black_box(fdiam_core::diameter_with(g, &FdiamConfig::parallel()).result))
        });
        group.bench_function("ifub_ser", |b| b.iter(|| black_box(ifub::ifub(g))));
        group.bench_function("ifub_par", |b| b.iter(|| black_box(ifub::ifub_parallel(g))));
        group.bench_function("graph_diameter", |b| {
            b.iter(|| black_box(graph_diameter::graph_diameter(g)))
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_codes
}
criterion_main!(benches);
