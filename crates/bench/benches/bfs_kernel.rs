//! Microbenchmark of the BFS kernels underlying every diameter code:
//! serial top-down vs parallel direction-optimized (hybrid), on a
//! high-diameter grid and a low-diameter power-law graph — the two
//! regimes §6.2 identifies as the extremes for BFS parallelism.

use criterion::{criterion_group, criterion_main, Criterion};
use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_hybrid_observed, bfs_eccentricity_serial, BfsConfig,
    BfsScratch, VisitMarks,
};
use fdiam_graph::generators::{barabasi_albert, grid2d};
use fdiam_obs::noop;
use std::hint::black_box;

fn bench_bfs(c: &mut Criterion) {
    let grid = grid2d(100, 100);
    let ba = barabasi_albert(10_000, 8, 7);
    let cfg = BfsConfig::default();
    let top_down_only = BfsConfig {
        direction_optimized: false,
        ..cfg
    };

    let mut group = c.benchmark_group("bfs_kernel");
    for (name, g) in [("grid_100x100", &grid), ("ba_10k_m8", &ba)] {
        let mut marks = VisitMarks::new(g.num_vertices());
        group.bench_function(format!("{name}/serial"), |b| {
            b.iter(|| black_box(bfs_eccentricity_serial(g, 0, &mut marks).eccentricity))
        });
        let mut scratch = BfsScratch::new(g.num_vertices());
        group.bench_function(format!("{name}/hybrid"), |b| {
            b.iter(|| black_box(bfs_eccentricity_hybrid(g, 0, &mut scratch, &cfg).eccentricity))
        });
        let mut scratch = BfsScratch::new(g.num_vertices());
        group.bench_function(format!("{name}/parallel_top_down"), |b| {
            b.iter(|| {
                black_box(bfs_eccentricity_hybrid(g, 0, &mut scratch, &top_down_only).eccentricity)
            })
        });
        // Same kernel through the instrumented entry point with the
        // no-op observer: regression guard for the "no measurable
        // overhead when disabled" requirement.
        let mut scratch = BfsScratch::new(g.num_vertices());
        group.bench_function(format!("{name}/hybrid_observed_noop"), |b| {
            b.iter(|| {
                black_box(
                    bfs_eccentricity_hybrid_observed(g, 0, &mut scratch, &cfg, noop()).eccentricity,
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bfs
}
criterion_main!(benches);
