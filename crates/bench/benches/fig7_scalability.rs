//! Criterion version of Figure 7: parallel F-Diam across thread-pool
//! sizes. On the paper's 32-core machine throughput rises to 32
//! threads; on fewer cores the curve flattens at the physical core
//! count (§6.2 discusses both the memory-bandwidth and frontier-size
//! limits).

use criterion::{criterion_group, criterion_main, Criterion};
use fdiam_core::FdiamConfig;
use fdiam_graph::generators::barabasi_albert;
use std::hint::black_box;

fn bench_threads(c: &mut Criterion) {
    let g = barabasi_albert(20_000, 8, 5);
    let host = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut threads = vec![1usize];
    while *threads.last().unwrap() * 2 <= host.max(4) {
        threads.push(threads.last().unwrap() * 2);
    }

    let mut group = c.benchmark_group("fig7/ba_20k_m8");
    for &t in &threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        group.bench_function(format!("threads_{t}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    black_box(fdiam_core::diameter_with(&g, &FdiamConfig::parallel()).result)
                })
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_threads
}
criterion_main!(benches);
