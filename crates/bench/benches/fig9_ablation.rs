//! Criterion version of Figure 9 / Table 5: F-Diam with each
//! optimization disabled in turn. Expected shape (§6.5): "no Winnow"
//! is the most damaging ablation, then "no 'u'", then "no Eliminate"
//! (whose cost concentrates on high-diameter inputs).

use criterion::{criterion_group, criterion_main, Criterion};
use fdiam_core::FdiamConfig;
use fdiam_graph::generators::{barabasi_albert, road_like};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let inputs = [
        ("ba_6k_m5", barabasi_albert(6_000, 5, 4)),
        ("road_6k", road_like(6_000, 0.12, 9)),
    ];
    let configs = [
        ("full", FdiamConfig::parallel()),
        ("no_winnow", FdiamConfig::parallel().without_winnow()),
        ("no_eliminate", FdiamConfig::parallel().without_eliminate()),
        ("no_u", FdiamConfig::parallel().without_max_degree_start()),
    ];
    for (name, g) in &inputs {
        let mut group = c.benchmark_group(format!("fig9/{name}"));
        for (cname, cfg) in &configs {
            group.bench_function(*cname, |b| {
                b.iter(|| black_box(fdiam_core::diameter_with(g, cfg).result))
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
