//! # fdiam-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section (§5–6) on synthetic analogues of the 17
//! inputs of Table 1.
//!
//! * [`suite`] — the input suite: one deterministic generator
//!   configuration per paper input, at an environment-selected scale
//!   (`SCALE=small|large`, default `small` for laptop runs).
//! * [`runner`] — median-of-N timing, soft timeouts, throughput
//!   (vertices/second, the paper's metric), and geometric means.
//! * [`format`](mod@format) — plain-text table rendering for the
//!   binaries.
//! * [`record`] — JSONL run records written next to each rendered
//!   table (`results/<table>_<scale>.jsonl`) for plots and regression
//!   checks.
//! * [`compare`] — the bench-regression harness: folds JSONL records
//!   into `BENCH_<rev>.json` summaries and diffs them against a
//!   checked-in baseline with a configurable tolerance (the `bench`
//!   binary, wired into CI).
//!
//! Each experiment has a binary (see `src/bin/`):
//!
//! | binary        | regenerates                                   |
//! |---------------|-----------------------------------------------|
//! | `table1`      | Table 1 (input inventory)                     |
//! | `table2_fig6` | Table 2 + Figure 6 (runtimes / throughput)    |
//! | `ecc_sweeps`  | all-eccentricities sweeps, serial vs bp64     |
//! | `dir_diam`    | directed SumSweep on the oriented suite       |
//! | `fig7`        | Figure 7 (throughput vs thread count)         |
//! | `table3`      | Table 3 (BFS traversal counts)                |
//! | `table4`      | Table 4 (% removed per stage)                 |
//! | `fig8`        | Figure 8 (% runtime per stage)                |
//! | `table5_fig9` | Table 5 + Figure 9 (ablations)                |
//! | `bench`       | summarize/compare for bench regression checks |
//!
//! Criterion benches (`benches/`) cover the same comparisons in
//! statistically robust micro form.

pub mod compare;
pub mod format;
pub mod record;
pub mod runner;
pub mod suite;
