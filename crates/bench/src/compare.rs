//! Bench-regression harness: folds JSONL run records into a compact
//! per-key summary (`BENCH_<rev>.json`) and diffs two such summaries
//! with a configurable tolerance.
//!
//! The JSONL records come from the table/figure binaries
//! ([`crate::record`]); each carries `code`, `graph`, `scale` and a
//! `median_secs` (null when timed out). [`summarize_jsonl`] groups them
//! by the key `code/graph/scale` and keeps the **median** and **min**
//! of the per-record medians — median for the regression verdict (robust
//! to one noisy record), min as the "best observed" reference number.
//!
//! [`compare`] flags a key as regressed when
//! `current.median > baseline.median × (1 + tolerance)`. Keys missing
//! on either side are reported but never fail the comparison: CI runs a
//! `FDIAM_ONLY`-filtered subset, so the current summary is routinely a
//! strict subset of the checked-in baseline.
//!
//! [`cli_main`] implements the `bench` binary (`summarize` /
//! `compare` / `trajectory` subcommands) as a testable function
//! returning the process exit code: 0 = clean, 1 = regression detected,
//! 2 = usage or I/O error.
//!
//! `trajectory` folds any number of `BENCH_<rev>.json` summaries into
//! an append-only `results/trajectory.jsonl` — one line per revision
//! with the per-key medians, deduplicated by rev so re-running CI on
//! the same commit never duplicates a point. The file is the repo's
//! perf history: plot `median_secs` over `rev` to watch a key's
//! trajectory across PRs.

use fdiam_obs::json::{parse, JsonObject, JsonValue};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary statistics for one `code/graph/scale` key.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelStat {
    /// Median of the per-record `median_secs` values.
    pub median_secs: f64,
    /// Minimum of the per-record `median_secs` values.
    pub min_secs: f64,
    /// Number of records with a finite time behind the statistics.
    pub samples: usize,
    /// Number of records that were timed out (null `median_secs` with
    /// `runs > 0`). A key with only timeouts has `samples == 0` and
    /// NaN statistics are never produced — such keys are dropped with
    /// the timeout count retained.
    pub timeouts: usize,
}

/// A benchmark summary: `code/graph/scale` → statistics, ordered by key
/// so the encoded JSON is deterministic and diff-friendly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchSummary {
    pub entries: BTreeMap<String, KernelStat>,
}

/// Folds JSONL run-record lines into a [`BenchSummary`]. Blank lines
/// are skipped; a malformed line or a record without the grouping
/// fields is an error (a truncated results file should fail loudly, not
/// silently weaken the baseline).
pub fn summarize_jsonl<'a>(
    lines: impl IntoIterator<Item = &'a str>,
) -> Result<BenchSummary, String> {
    let mut groups: BTreeMap<String, (Vec<f64>, usize)> = BTreeMap::new();
    for (i, line) in lines.into_iter().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("line {}: missing string field '{k}'", i + 1))
        };
        let key = format!("{}/{}/{}", field("code")?, field("graph")?, field("scale")?);
        let entry = groups.entry(key).or_default();
        match v.get("median_secs").and_then(JsonValue::as_f64) {
            Some(secs) => entry.0.push(secs),
            None => entry.1 += 1, // timed out (or untimed) record
        }
    }
    let mut entries = BTreeMap::new();
    for (key, (mut times, timeouts)) in groups {
        if times.is_empty() {
            // Only timeouts: no finite statistics to compare against.
            continue;
        }
        times.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
        entries.insert(
            key,
            KernelStat {
                median_secs: times[times.len() / 2],
                min_secs: times[0],
                samples: times.len(),
                timeouts,
            },
        );
    }
    Ok(BenchSummary { entries })
}

impl BenchSummary {
    /// Encodes the summary as a pretty-stable JSON object
    /// (`{"<key>": {"median_secs": …, "min_secs": …, …}, …}`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        for (key, s) in &self.entries {
            let inner = JsonObject::new()
                .f64("median_secs", s.median_secs)
                .f64("min_secs", s.min_secs)
                .usize("samples", s.samples)
                .usize("timeouts", s.timeouts)
                .finish();
            o = o.raw(key, &inner);
        }
        o.finish()
    }

    /// Decodes a summary previously written by [`Self::to_json`].
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text)?;
        let JsonValue::Object(fields) = v else {
            return Err("summary must be a JSON object".into());
        };
        let mut entries = BTreeMap::new();
        for (key, stat) in fields {
            let num = |k: &str| -> Result<f64, String> {
                stat.get(k)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("key '{key}': missing number '{k}'"))
            };
            entries.insert(
                key.clone(),
                KernelStat {
                    median_secs: num("median_secs")?,
                    min_secs: num("min_secs")?,
                    samples: num("samples")? as usize,
                    timeouts: num("timeouts")? as usize,
                },
            );
        }
        Ok(Self { entries })
    }
}

/// Verdict for one key of a comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (includes improvements below the ratio bound).
    Ok,
    /// Faster than baseline by more than the tolerance — worth a look,
    /// never a failure.
    Improved,
    /// Slower than baseline beyond the tolerance.
    Regression,
    /// Key present only in the baseline (filtered run) — informational.
    MissingInCurrent,
    /// Key present only in the current summary — informational.
    NewInCurrent,
}

/// One row of a [`CompareReport`].
#[derive(Clone, Debug)]
pub struct CompareRow {
    pub key: String,
    pub baseline_median: Option<f64>,
    pub current_median: Option<f64>,
    /// `current / baseline` when both sides exist.
    pub ratio: Option<f64>,
    pub verdict: Verdict,
}

/// The result of diffing two summaries.
#[derive(Clone, Debug)]
pub struct CompareReport {
    pub tolerance: f64,
    pub rows: Vec<CompareRow>,
}

impl CompareReport {
    pub fn has_regression(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regression)
    }

    /// Plain-text rendering for CI logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench compare (tolerance {:.0}%):",
            self.tolerance * 100.0
        );
        for r in &self.rows {
            let fmt = |x: Option<f64>| match x {
                Some(s) => format!("{s:.4}s"),
                None => "   —   ".to_string(),
            };
            let ratio = match r.ratio {
                Some(x) => format!("{x:.2}x"),
                None => "—".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:18} {:42} base {} cur {} ({ratio})",
                format!("{:?}", r.verdict),
                r.key,
                fmt(r.baseline_median),
                fmt(r.current_median),
            );
        }
        let n_reg = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
            .count();
        let _ = writeln!(
            out,
            "{}",
            if n_reg == 0 {
                "OK: no regressions".to_string()
            } else {
                format!("FAIL: {n_reg} regression(s)")
            }
        );
        out
    }

    /// GitHub-flavoured markdown rendering for CI step summaries: one
    /// row per `code/graph/scale` key with the key split into columns,
    /// regressions flagged with ❌ so the offending cell stands out in
    /// a long table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### Bench regression check (tolerance {:.0}%)\n",
            self.tolerance * 100.0
        );
        let _ = writeln!(
            out,
            "| code | graph | scale | baseline | current | ratio | verdict |"
        );
        let _ = writeln!(out, "|---|---|---|---:|---:|---:|---|");
        for r in &self.rows {
            // Keys are "code/graph/scale"; anything else lands in the
            // code column verbatim rather than being dropped.
            let mut parts = r.key.splitn(3, '/');
            let code = parts.next().unwrap_or("");
            let graph = parts.next().unwrap_or("");
            let scale = parts.next().unwrap_or("");
            let fmt = |x: Option<f64>| match x {
                Some(s) => format!("{s:.4}s"),
                None => "—".to_string(),
            };
            let ratio = match r.ratio {
                Some(x) => format!("{x:.2}x"),
                None => "—".to_string(),
            };
            let verdict = match r.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "🚀 improved",
                Verdict::Regression => "❌ **regression**",
                Verdict::MissingInCurrent => "missing in current",
                Verdict::NewInCurrent => "new in current",
            };
            let _ = writeln!(
                out,
                "| {code} | {graph} | {scale} | {} | {} | {ratio} | {verdict} |",
                fmt(r.baseline_median),
                fmt(r.current_median),
            );
        }
        let n_reg = self
            .rows
            .iter()
            .filter(|r| r.verdict == Verdict::Regression)
            .count();
        let _ = writeln!(
            out,
            "\n{}",
            if n_reg == 0 {
                "**OK: no regressions**".to_string()
            } else {
                format!("**FAIL: {n_reg} regression(s)**")
            }
        );
        out
    }
}

/// Diffs `current` against `baseline`: a key regresses when its current
/// median exceeds the baseline median by more than `tolerance`
/// (fractional — 0.25 allows a 25 % slowdown, absorbing shared-runner
/// noise at CI's small scales).
pub fn compare(baseline: &BenchSummary, current: &BenchSummary, tolerance: f64) -> CompareReport {
    let mut rows = Vec::new();
    for (key, b) in &baseline.entries {
        match current.entries.get(key) {
            None => rows.push(CompareRow {
                key: key.clone(),
                baseline_median: Some(b.median_secs),
                current_median: None,
                ratio: None,
                verdict: Verdict::MissingInCurrent,
            }),
            Some(c) => {
                let ratio = if b.median_secs > 0.0 {
                    c.median_secs / b.median_secs
                } else if c.median_secs == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                };
                let verdict = if ratio > 1.0 + tolerance {
                    Verdict::Regression
                } else if ratio < 1.0 / (1.0 + tolerance) {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                rows.push(CompareRow {
                    key: key.clone(),
                    baseline_median: Some(b.median_secs),
                    current_median: Some(c.median_secs),
                    ratio: Some(ratio),
                    verdict,
                });
            }
        }
    }
    for (key, c) in &current.entries {
        if !baseline.entries.contains_key(key) {
            rows.push(CompareRow {
                key: key.clone(),
                baseline_median: None,
                current_median: Some(c.median_secs),
                ratio: None,
                verdict: Verdict::NewInCurrent,
            });
        }
    }
    CompareReport { tolerance, rows }
}

/// Extracts the revision from a `BENCH_<rev>.json` path: the file stem
/// with its `BENCH_` prefix stripped. `None` when the name does not
/// follow the pattern.
pub fn rev_from_path(path: &str) -> Option<String> {
    let stem = std::path::Path::new(path).file_stem()?.to_str()?;
    let rev = stem.strip_prefix("BENCH_")?;
    (!rev.is_empty()).then(|| rev.to_string())
}

/// One `trajectory.jsonl` line for a revision: the rev, the number of
/// keys, and the per-key medians (`min_secs` rides along as the best
/// observed time).
pub fn trajectory_line(rev: &str, summary: &BenchSummary) -> String {
    let mut medians = JsonObject::new();
    let mut mins = JsonObject::new();
    for (key, s) in &summary.entries {
        medians = medians.f64(key, s.median_secs);
        mins = mins.f64(key, s.min_secs);
    }
    JsonObject::new()
        .str("rev", rev)
        .usize("keys", summary.entries.len())
        .raw("median_secs", &medians.finish())
        .raw("min_secs", &mins.finish())
        .finish()
}

/// The revs already present in a `trajectory.jsonl` body. Malformed
/// lines are errors: the perf history must fail loudly, not rot.
pub fn trajectory_revs(text: &str) -> Result<Vec<String>, String> {
    let mut revs = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse(line).map_err(|e| format!("trajectory line {}: {e}", i + 1))?;
        let rev = v
            .get("rev")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("trajectory line {}: missing 'rev'", i + 1))?;
        revs.push(rev.to_string());
    }
    Ok(revs)
}

const USAGE: &str = "usage:
  bench summarize <records.jsonl>... --out <BENCH_rev.json>
  bench compare <baseline.json> <current.json> [--tolerance 0.25] [--markdown <path>]
  bench trajectory <BENCH_rev.json>... --out <trajectory.jsonl>
  bench check-trajectory <trajectory.jsonl>

exit codes: 0 = clean, 1 = regression / duplicate rev, 2 = usage/I/O error";

/// The `bench` binary as a testable function. `args` excludes the
/// program name. Returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    match args.first().map(String::as_str) {
        Some("summarize") => cli_summarize(&args[1..]),
        Some("compare") => cli_compare(&args[1..]),
        Some("trajectory") => cli_trajectory(&args[1..]),
        Some("check-trajectory") => cli_check_trajectory(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    }
}

/// `bench check-trajectory`: validates the perf-history invariants CI
/// relies on — every line parses with a `rev`, and no rev appears
/// twice (a duplicate means the append-only dedup contract broke).
/// Exit 1 on duplicates, 2 on malformed lines or I/O errors.
fn cli_check_trajectory(args: &[String]) -> i32 {
    let [path] = args else {
        eprintln!("{USAGE}");
        return 2;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let revs = match trajectory_revs(&text) {
        Ok(revs) => revs,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 2;
        }
    };
    let mut seen = std::collections::BTreeSet::new();
    let dups: Vec<&String> = revs.iter().filter(|r| !seen.insert(r.as_str())).collect();
    if !dups.is_empty() {
        eprintln!("error: {path}: duplicate rev(s): {dups:?}");
        return 1;
    }
    println!("{path}: {} rev(s), dedup intact", revs.len());
    0
}

/// `bench trajectory`: append one line per new rev to the perf-history
/// file. Existing lines are never rewritten; already-recorded revs are
/// skipped so the operation is idempotent.
fn cli_trajectory(args: &[String]) -> i32 {
    let mut inputs = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return 2;
                }
            },
            _ => inputs.push(a.clone()),
        }
    }
    let (Some(out), false) = (out, inputs.is_empty()) else {
        eprintln!("{USAGE}");
        return 2;
    };
    let existing = match std::fs::read_to_string(&out) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => {
            eprintln!("error: cannot read {out}: {e}");
            return 2;
        }
    };
    let mut seen = match trajectory_revs(&existing) {
        Ok(revs) => revs,
        Err(e) => {
            eprintln!("error: {out}: {e}");
            return 2;
        }
    };
    let mut appended = String::new();
    let mut added = 0usize;
    let mut skipped = 0usize;
    for path in &inputs {
        let Some(rev) = rev_from_path(path) else {
            eprintln!("error: '{path}' is not a BENCH_<rev>.json file");
            return 2;
        };
        if seen.contains(&rev) {
            skipped += 1;
            continue;
        }
        let summary = match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| BenchSummary::from_json(&text).map_err(|e| format!("{path}: {e}")))
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        };
        appended.push_str(&trajectory_line(&rev, &summary));
        appended.push('\n');
        seen.push(rev);
        added += 1;
    }
    if added > 0 {
        use std::io::Write as _;
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&out)
            .and_then(|mut f| f.write_all(appended.as_bytes()));
        if let Err(e) = write {
            eprintln!("error: cannot append to {out}: {e}");
            return 2;
        }
    }
    println!("{out}: {added} rev(s) appended, {skipped} already recorded");
    0
}

fn cli_summarize(args: &[String]) -> i32 {
    let mut inputs = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(p.clone()),
                None => {
                    eprintln!("--out needs a path\n{USAGE}");
                    return 2;
                }
            },
            _ => inputs.push(a.clone()),
        }
    }
    let (Some(out), false) = (out, inputs.is_empty()) else {
        eprintln!("{USAGE}");
        return 2;
    };
    let mut body = String::new();
    for path in &inputs {
        match std::fs::read_to_string(path) {
            Ok(text) => body.push_str(&text),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return 2;
            }
        }
        if !body.ends_with('\n') {
            body.push('\n');
        }
    }
    let summary = match summarize_jsonl(body.lines()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if summary.entries.is_empty() {
        eprintln!("error: no timed records found in {} file(s)", inputs.len());
        return 2;
    }
    if let Err(e) = std::fs::write(&out, summary.to_json() + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        return 2;
    }
    println!("wrote {} ({} keys)", out, summary.entries.len());
    0
}

fn cli_compare(args: &[String]) -> i32 {
    let mut paths = Vec::new();
    let mut tolerance = 0.25f64;
    let mut markdown = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => match it.next().map(|s| s.parse::<f64>()) {
                Some(Ok(t)) if t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative number\n{USAGE}");
                    return 2;
                }
            },
            "--markdown" => match it.next() {
                Some(p) => markdown = Some(p.clone()),
                None => {
                    eprintln!("--markdown needs a path\n{USAGE}");
                    return 2;
                }
            },
            _ => paths.push(a.clone()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("{USAGE}");
        return 2;
    };
    let load = |path: &str| -> Result<BenchSummary, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        BenchSummary::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let report = compare(&baseline, &current, tolerance);
    print!("{}", report.render());
    if let Some(path) = markdown {
        // Append rather than truncate: $GITHUB_STEP_SUMMARY accumulates
        // sections across steps of a job.
        use std::io::Write as _;
        let write = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(report.render_markdown().as_bytes()));
        if let Err(e) = write {
            eprintln!("error: cannot write markdown to {path}: {e}");
            return 2;
        }
    }
    i32::from(report.has_regression())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(code: &str, graph: &str, secs: Option<f64>) -> String {
        let o = JsonObject::new()
            .str("table", "table2_fig6")
            .str("code", code)
            .str("graph", graph)
            .str("scale", "small")
            .usize("runs", 3);
        match secs {
            Some(s) => o.f64("median_secs", s).finish(),
            None => o
                .raw("median_secs", "null")
                .bool("timed_out", true)
                .finish(),
        }
    }

    #[test]
    fn summarize_takes_median_and_min_per_key() {
        let lines = [
            record("fdiam", "grid2d.sym", Some(0.30)),
            record("fdiam", "grid2d.sym", Some(0.10)),
            record("fdiam", "grid2d.sym", Some(0.20)),
            record("ifub", "grid2d.sym", Some(1.00)),
            String::new(), // blank lines are fine
        ];
        let s = summarize_jsonl(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(s.entries.len(), 2);
        let fd = &s.entries["fdiam/grid2d.sym/small"];
        assert_eq!(fd.median_secs, 0.20);
        assert_eq!(fd.min_secs, 0.10);
        assert_eq!(fd.samples, 3);
        assert_eq!(fd.timeouts, 0);
        assert_eq!(s.entries["ifub/grid2d.sym/small"].samples, 1);
    }

    #[test]
    fn summarize_counts_timeouts_and_drops_all_timeout_keys() {
        let lines = [
            record("fdiam", "g", Some(0.5)),
            record("fdiam", "g", None),
            record("ifub", "g", None),
        ];
        let s = summarize_jsonl(lines.iter().map(String::as_str)).unwrap();
        assert_eq!(s.entries["fdiam/g/small"].timeouts, 1);
        assert_eq!(s.entries["fdiam/g/small"].samples, 1);
        assert!(
            !s.entries.contains_key("ifub/g/small"),
            "all-timeout key has no statistics"
        );
    }

    #[test]
    fn summarize_rejects_malformed_lines() {
        assert!(summarize_jsonl(["not json"]).is_err());
        let no_code = JsonObject::new()
            .str("graph", "g")
            .str("scale", "s")
            .finish();
        let err = summarize_jsonl([no_code.as_str()]).unwrap_err();
        assert!(err.contains("'code'"), "{err}");
    }

    #[test]
    fn summary_roundtrips_through_json() {
        let lines = [
            record("fdiam", "g", Some(0.25)),
            record("ifub", "g", Some(2.0)),
        ];
        let s = summarize_jsonl(lines.iter().map(String::as_str)).unwrap();
        let back = BenchSummary::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    fn one_key_summary(key: &str, median: f64) -> BenchSummary {
        let mut entries = BTreeMap::new();
        entries.insert(
            key.to_string(),
            KernelStat {
                median_secs: median,
                min_secs: median,
                samples: 3,
                timeouts: 0,
            },
        );
        BenchSummary { entries }
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let base = one_key_summary("fdiam/g/small", 1.0);
        // 30 % slower than baseline at 25 % tolerance → regression
        let slow = one_key_summary("fdiam/g/small", 1.3);
        let report = compare(&base, &slow, 0.25);
        assert!(report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Regression);
        assert!(report.render().contains("FAIL: 1 regression"));
        // exactly at tolerance → not a regression (strict inequality)
        let at = one_key_summary("fdiam/g/small", 1.25);
        assert!(!compare(&base, &at, 0.25).has_regression());
        // big speedup → Improved, never a failure
        let fast = one_key_summary("fdiam/g/small", 0.5);
        let report = compare(&base, &fast, 0.25);
        assert!(!report.has_regression());
        assert_eq!(report.rows[0].verdict, Verdict::Improved);
    }

    #[test]
    fn compare_reports_missing_and_new_keys_without_failing() {
        let base = one_key_summary("fdiam/old/small", 1.0);
        let cur = one_key_summary("fdiam/new/small", 1.0);
        let report = compare(&base, &cur, 0.25);
        assert!(!report.has_regression());
        let verdicts: Vec<Verdict> = report.rows.iter().map(|r| r.verdict).collect();
        assert!(verdicts.contains(&Verdict::MissingInCurrent));
        assert!(verdicts.contains(&Verdict::NewInCurrent));
    }

    #[test]
    fn compare_handles_zero_baseline() {
        let base = one_key_summary("k", 0.0);
        assert!(!compare(&base, &one_key_summary("k", 0.0), 0.25).has_regression());
        assert!(compare(&base, &one_key_summary("k", 0.1), 0.25).has_regression());
    }

    /// End-to-end through the CLI entry point: summarize crafted JSONL
    /// for two revisions, then `bench compare` must exit nonzero on the
    /// synthetic ≥-tolerance slowdown and zero within tolerance.
    #[test]
    fn cli_detects_synthetic_regression_with_nonzero_exit() {
        let dir = std::env::temp_dir().join("fdiam_bench_compare_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let write_jsonl = |name: &str, secs: f64| -> String {
            let path = dir.join(name);
            let lines: Vec<String> = (0..3)
                .map(|i| record("fdiam", "grid2d.sym", Some(secs + i as f64 * 0.001)))
                .collect();
            std::fs::write(&path, lines.join("\n")).unwrap();
            path.to_string_lossy().into_owned()
        };
        let base_jsonl = write_jsonl("base.jsonl", 0.100);
        let slow_jsonl = write_jsonl("slow.jsonl", 0.150); // +50 %
        let ok_jsonl = write_jsonl("ok.jsonl", 0.105); // +5 %
        let s = |x: &str| x.to_string();
        let base_json = dir.join("BENCH_base.json").to_string_lossy().into_owned();
        let slow_json = dir.join("BENCH_slow.json").to_string_lossy().into_owned();
        let ok_json = dir.join("BENCH_ok.json").to_string_lossy().into_owned();
        for (jsonl, json) in [
            (&base_jsonl, &base_json),
            (&slow_jsonl, &slow_json),
            (&ok_jsonl, &ok_json),
        ] {
            assert_eq!(
                cli_main(&[s("summarize"), jsonl.clone(), s("--out"), json.clone()]),
                0
            );
        }
        assert_eq!(
            cli_main(&[
                s("compare"),
                base_json.clone(),
                slow_json,
                s("--tolerance"),
                s("0.25"),
            ]),
            1,
            "50 % slowdown at 25 % tolerance must exit nonzero"
        );
        assert_eq!(
            cli_main(&[
                s("compare"),
                base_json,
                ok_json,
                s("--tolerance"),
                s("0.25"),
            ]),
            0,
            "5 % drift within tolerance must exit zero"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn markdown_rendering_splits_keys_and_flags_regressions() {
        let base = one_key_summary("fdiam/grid2d.sym/small", 1.0);
        let slow = one_key_summary("fdiam/grid2d.sym/small", 1.5);
        let md = compare(&base, &slow, 0.25).render_markdown();
        assert!(md.contains("| code | graph | scale |"), "{md}");
        assert!(
            md.contains("| fdiam | grid2d.sym | small |"),
            "key split into columns:\n{md}"
        );
        assert!(md.contains("1.50x"), "{md}");
        assert!(md.contains("**regression**"), "{md}");
        assert!(md.contains("**FAIL: 1 regression(s)**"), "{md}");

        let clean = compare(&base, &base, 0.25).render_markdown();
        assert!(clean.contains("**OK: no regressions**"), "{clean}");
        assert!(!clean.contains("regression(s)"), "{clean}");
    }

    #[test]
    fn cli_compare_appends_markdown_to_the_given_path() {
        let dir = std::env::temp_dir().join("fdiam_bench_markdown_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let s = |x: &str| x.to_string();
        let write = |name: &str, median: f64| -> String {
            let path = dir.join(name);
            std::fs::write(&path, one_key_summary("fdiam/g/small", median).to_json()).unwrap();
            path.to_string_lossy().into_owned()
        };
        let base = write("BENCH_base.json", 0.10);
        let cur = write("BENCH_cur.json", 0.10);
        let md = dir.join("summary.md").to_string_lossy().into_owned();
        std::fs::write(&md, "## earlier step\n").unwrap();
        assert_eq!(
            cli_main(&[s("compare"), base, cur, s("--markdown"), md.clone()]),
            0
        );
        let text = std::fs::read_to_string(&md).unwrap();
        assert!(
            text.starts_with("## earlier step\n"),
            "must append, not truncate:\n{text}"
        );
        assert!(text.contains("| code | graph | scale |"), "{text}");
        assert_eq!(
            cli_main(&[s("compare"), s("a"), s("b"), s("--markdown")]),
            2
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cli_check_trajectory_validates_dedup_and_shape() {
        let dir = std::env::temp_dir().join("fdiam_bench_check_trajectory_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let s = |x: &str| x.to_string();
        let summary = one_key_summary("fdiam/g/small", 0.1);
        let write = |name: &str, body: &str| -> String {
            let path = dir.join(name);
            std::fs::write(&path, body).unwrap();
            path.to_string_lossy().into_owned()
        };
        let line_a = trajectory_line("aaa111", &summary);
        let line_b = trajectory_line("bbb222", &summary);
        let good = write("good.jsonl", &format!("{line_a}\n{line_b}\n"));
        assert_eq!(cli_main(&[s("check-trajectory"), good]), 0);
        let dup = write("dup.jsonl", &format!("{line_a}\n{line_a}\n"));
        assert_eq!(
            cli_main(&[s("check-trajectory"), dup]),
            1,
            "duplicate rev must fail the check"
        );
        let bad = write("bad.jsonl", "not json\n");
        assert_eq!(cli_main(&[s("check-trajectory"), bad]), 2);
        assert_eq!(
            cli_main(&[s("check-trajectory"), s("/nonexistent/t.jsonl")]),
            2
        );
        assert_eq!(cli_main(&[s("check-trajectory")]), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rev_parses_from_bench_file_names() {
        assert_eq!(rev_from_path("BENCH_abc123.json"), Some("abc123".into()));
        assert_eq!(
            rev_from_path("artifacts/BENCH_4a593a2f00.json"),
            Some("4a593a2f00".into())
        );
        assert_eq!(rev_from_path("BENCH_.json"), None);
        assert_eq!(rev_from_path("baseline-small.json"), None);
        assert_eq!(rev_from_path("notBENCH_x.json"), None);
    }

    #[test]
    fn trajectory_line_roundtrips_revs() {
        let line = trajectory_line("abc123", &one_key_summary("fdiam/g/small", 0.25));
        let revs = trajectory_revs(&line).unwrap();
        assert_eq!(revs, vec!["abc123".to_string()]);
        let v = parse(&line).unwrap();
        assert_eq!(v.get("keys").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            v.get("median_secs")
                .and_then(|m| m.get("fdiam/g/small"))
                .and_then(JsonValue::as_f64),
            Some(0.25)
        );
        assert!(trajectory_revs("not json\n").is_err());
        assert!(trajectory_revs("{\"keys\":1}\n").is_err(), "missing rev");
    }

    /// End-to-end: folding the same rev twice appends exactly one line,
    /// and a second rev lands after the first without rewriting it.
    #[test]
    fn cli_trajectory_appends_once_per_rev() {
        let dir = std::env::temp_dir().join("fdiam_bench_trajectory_test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let s = |x: &str| x.to_string();
        let write_summary = |rev: &str, median: f64| -> String {
            let path = dir.join(format!("BENCH_{rev}.json"));
            let summary = one_key_summary("fdiam/g/small", median);
            std::fs::write(&path, summary.to_json()).unwrap();
            path.to_string_lossy().into_owned()
        };
        let a = write_summary("aaa111", 0.10);
        let b = write_summary("bbb222", 0.12);
        let out = dir.join("trajectory.jsonl").to_string_lossy().into_owned();

        assert_eq!(
            cli_main(&[s("trajectory"), a.clone(), s("--out"), out.clone()]),
            0
        );
        assert_eq!(
            cli_main(&[s("trajectory"), a.clone(), s("--out"), out.clone()]),
            0
        );
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text.lines().count(), 1, "rerun must not duplicate:\n{text}");

        assert_eq!(
            cli_main(&[s("trajectory"), a, b, s("--out"), out.clone()]),
            0
        );
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(trajectory_revs(&text).unwrap(), vec!["aaa111", "bbb222"]);
        assert!(
            text.lines().next().unwrap().contains("aaa111"),
            "existing lines are never rewritten:\n{text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cli_trajectory_rejects_nonconforming_names() {
        let s = |x: &str| x.to_string();
        assert_eq!(
            cli_main(&[
                s("trajectory"),
                s("baseline-small.json"),
                s("--out"),
                s("/tmp/t.jsonl")
            ]),
            2
        );
        assert_eq!(
            cli_main(&[s("trajectory"), s("--out"), s("/tmp/t.jsonl")]),
            2
        );
    }

    #[test]
    fn cli_rejects_bad_usage_with_exit_2() {
        let s = |x: &str| x.to_string();
        assert_eq!(cli_main(&[]), 2);
        assert_eq!(cli_main(&[s("frobnicate")]), 2);
        assert_eq!(cli_main(&[s("summarize"), s("only-input.jsonl")]), 2);
        assert_eq!(cli_main(&[s("compare"), s("just-one.json")]), 2);
        assert_eq!(
            cli_main(&[
                s("compare"),
                s("/nonexistent/a.json"),
                s("/nonexistent/b.json")
            ]),
            2
        );
        assert_eq!(
            cli_main(&[s("compare"), s("a"), s("b"), s("--tolerance"), s("-1")]),
            2
        );
    }
}
