//! Machine-readable run records.
//!
//! Every table/figure binary renders a human-readable table on stdout
//! *and* appends one JSONL record per (input, code) cell to
//! `results/<table>_<scale>.jsonl`, so plots and regression checks can
//! consume the raw numbers without scraping the rendered text. The
//! encoding reuses `fdiam-obs`'s dependency-free JSON builder — records
//! interleave cleanly with `--trace` event streams in downstream
//! tooling.

use fdiam_obs::json::JsonObject;
use std::io::Write;
use std::path::{Path, PathBuf};

/// One measured cell of a paper table or figure.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Which experiment produced this record (`"table3"`, `"fig8"`, …).
    pub table: &'static str,
    /// Which code was measured (`"fdiam"`, `"ifub"`, …).
    pub code: &'static str,
    /// Suite entry name (synthetic analogue).
    pub graph: String,
    /// The paper input this entry stands in for.
    pub paper_name: String,
    /// `small` or `large`.
    pub scale: String,
    pub n: usize,
    pub m: usize,
    /// Repetitions behind `median_secs` (0 when untimed).
    pub runs: usize,
    /// Median wall-clock seconds; `None` = timed out (paper's "T/O").
    pub median_secs: Option<f64>,
    /// Largest-connected-component diameter, when the code finished.
    pub diameter: Option<u32>,
    /// Figure-8 stage fractions `[ecc_bfs, winnow, chain, eliminate,
    /// other]`, when the experiment collects timings.
    pub stage_fractions: Option<[f64; 5]>,
    /// Observer counters (Table 3 traversal counts etc.), name → value.
    pub counters: Vec<(&'static str, u64)>,
}

impl RunRecord {
    /// Encodes the record as a single JSON line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut o = JsonObject::new()
            .str("table", self.table)
            .str("code", self.code)
            .str("graph", &self.graph)
            .str("paper_name", &self.paper_name)
            .str("scale", &self.scale)
            .usize("n", self.n)
            .usize("m", self.m)
            .usize("runs", self.runs);
        // `median_secs: None` means "timed out" for timed experiments
        // (runs > 0) and simply "untimed" for counting experiments.
        o = match self.median_secs {
            Some(s) => o.f64("median_secs", s),
            None if self.runs > 0 => o.raw("median_secs", "null").bool("timed_out", true),
            None => o.raw("median_secs", "null"),
        };
        if let Some(d) = self.diameter {
            o = o.u64("diameter", d as u64);
        }
        if let Some(f) = self.stage_fractions {
            let arr = format!(
                "[{:.6},{:.6},{:.6},{:.6},{:.6}]",
                f[0], f[1], f[2], f[3], f[4]
            );
            o = o.raw("stage_fractions", &arr);
        }
        if !self.counters.is_empty() {
            let mut c = JsonObject::new();
            for (name, value) in &self.counters {
                c = c.u64(name, *value);
            }
            o = o.raw("counters", &c.finish());
        }
        o.finish()
    }
}

/// Accumulates records and writes them to `results/<table>_<scale>.jsonl`.
pub struct RecordWriter {
    path: PathBuf,
    records: Vec<RunRecord>,
}

impl RecordWriter {
    /// A writer targeting `<dir>/<table>_<scale>.jsonl`.
    pub fn new(dir: impl AsRef<Path>, table: &str, scale: &str) -> Self {
        Self {
            path: dir.as_ref().join(format!("{table}_{scale}.jsonl")),
            records: Vec::new(),
        }
    }

    /// The conventional output directory, `results/` under the CWD.
    pub fn for_table(table: &str, scale: &str) -> Self {
        Self::new("results", table, scale)
    }

    pub fn push(&mut self, r: RunRecord) {
        self.records.push(r);
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Writes all records (one JSON object per line), creating the
    /// directory if needed. Returns the output path.
    pub fn flush(&self) -> std::io::Result<PathBuf> {
        if let Some(dir) = self.path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(&self.path)?);
        for r in &self.records {
            writeln!(f, "{}", r.to_jsonl())?;
        }
        f.flush()?;
        Ok(self.path.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_obs::json::parse;

    fn sample() -> RunRecord {
        RunRecord {
            table: "table3",
            code: "fdiam",
            graph: "grid-small".into(),
            paper_name: "USA-road".into(),
            scale: "small".into(),
            n: 100,
            m: 180,
            runs: 3,
            median_secs: Some(0.125),
            diameter: Some(18),
            stage_fractions: Some([0.7, 0.1, 0.05, 0.05, 0.1]),
            counters: vec![("bfs.traversals", 12), ("driver.winnow_calls", 2)],
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let line = sample().to_jsonl();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("table").unwrap().as_str().unwrap(), "table3");
        assert_eq!(v.get("graph").unwrap().as_str().unwrap(), "grid-small");
        assert_eq!(v.get("n").unwrap().as_u64().unwrap(), 100);
        assert_eq!(v.get("diameter").unwrap().as_u64().unwrap(), 18);
        assert!((v.get("median_secs").unwrap().as_f64().unwrap() - 0.125).abs() < 1e-12);
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("bfs.traversals").unwrap().as_u64().unwrap(),
            12
        );
    }

    #[test]
    fn timeout_encodes_null_median() {
        let mut r = sample();
        r.median_secs = None;
        r.diameter = None;
        let line = r.to_jsonl();
        let v = parse(&line).unwrap();
        assert!(v.get("median_secs").unwrap().as_f64().is_none());
        assert_eq!(v.get("timed_out").unwrap().as_bool(), Some(true));
        assert!(v.get("diameter").is_none());
    }

    #[test]
    fn untimed_record_is_not_a_timeout() {
        let mut r = sample();
        r.runs = 0;
        r.median_secs = None;
        let v = parse(&r.to_jsonl()).unwrap();
        assert!(v.get("median_secs").unwrap().as_f64().is_none());
        assert!(v.get("timed_out").is_none(), "untimed ≠ timed out");
    }

    #[test]
    fn writer_emits_one_line_per_record() {
        let dir = std::env::temp_dir().join("fdiam_record_test");
        std::fs::remove_dir_all(&dir).ok();
        let mut w = RecordWriter::new(&dir, "table3", "small");
        assert!(w.is_empty());
        w.push(sample());
        w.push(sample());
        let path = w.flush().unwrap();
        assert!(path.ends_with("table3_small.jsonl"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body.lines().count(), 2);
        for line in body.lines() {
            assert!(parse(line).is_ok(), "{line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
