//! Regenerates the paper's **Table 4**: percentage of vertices removed
//! from consideration by Winnow, Eliminate, and Chain Processing, plus
//! degree-0 vertices.
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin table4
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    println!("Table 4 — % of vertices removed per stage at scale {scale:?}\n");
    let mut t = Table::new(vec![
        "Graphs",
        "Winnow",
        "Eliminate",
        "Chain",
        "Degree-0",
        "computed (BFS)",
    ]);
    for e in filtered_suite() {
        let g = e.build(scale);
        let out = fdiam_core::diameter_with(&g, &FdiamConfig::parallel());
        let n = g.num_vertices();
        let [w, el, ch, d0] = out.stats.removed.percentages(n);
        let computed = 100.0 * out.stats.removed.computed as f64 / n as f64;
        t.row(vec![
            e.name.to_string(),
            format!("{w:.2}%"),
            format!("{el:.2}%"),
            format!("{ch:.2}%"),
            format!("{d0:.2}%"),
            format!("{computed:.2}%"),
        ]);
    }
    print!("{}", t.render());
    println!("\nWinnow is the dominant remover on every input (§6.4).");
}
