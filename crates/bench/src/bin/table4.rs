//! Regenerates the paper's **Table 4**: percentage of vertices removed
//! from consideration by Winnow, Eliminate, and Chain Processing, plus
//! degree-0 vertices.
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin table4
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    let scale_name = format!("{scale:?}").to_lowercase();
    println!("Table 4 — % of vertices removed per stage at scale {scale:?}\n");
    let mut t = Table::new(vec![
        "Graphs",
        "Winnow",
        "Eliminate",
        "Chain",
        "Degree-0",
        "computed (BFS)",
    ]);
    let mut records = RecordWriter::for_table("table4", &scale_name);
    for e in filtered_suite() {
        let g = e.build(scale);
        let out = fdiam_core::diameter_with(&g, &FdiamConfig::parallel());
        let n = g.num_vertices();
        let [w, el, ch, d0] = out.stats.removed.percentages(n);
        let computed = 100.0 * out.stats.removed.computed as f64 / n as f64;
        t.row(vec![
            e.name.to_string(),
            format!("{w:.2}%"),
            format!("{el:.2}%"),
            format!("{ch:.2}%"),
            format!("{d0:.2}%"),
            format!("{computed:.2}%"),
        ]);
        records.push(RunRecord {
            table: "table4",
            code: "fdiam",
            graph: e.name.to_string(),
            paper_name: e.paper_name.to_string(),
            scale: scale_name.clone(),
            n,
            m: g.num_undirected_edges(),
            runs: 0,
            median_secs: None,
            diameter: Some(out.result.largest_cc_diameter),
            stage_fractions: None,
            counters: vec![
                ("removed.winnow", out.stats.removed.winnow as u64),
                ("removed.eliminate", out.stats.removed.eliminate as u64),
                ("removed.chain", out.stats.removed.chain as u64),
                ("removed.degree0", out.stats.removed.degree0 as u64),
                ("removed.computed", out.stats.removed.computed as u64),
            ],
        });
    }
    print!("{}", t.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }
    println!("\nWinnow is the dominant remover on every input (§6.4).");
}
