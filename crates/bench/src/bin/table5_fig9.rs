//! Regenerates the paper's **Table 5** (BFS calls per ablated F-Diam
//! version) and **Figure 9** (throughput of each version): the full
//! code vs "no Winnow", "no Eliminate", and "no 'u'" (start from vertex
//! 0 instead of the max-degree vertex).
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin table5_fig9
//! ```

use fdiam_bench::format::{tput, Table};
use fdiam_bench::runner::{geomean, measure, runs_from_env, throughput, timeout_from_env};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::{FdiamConfig, FdiamOutcome};

fn configs() -> [(&'static str, FdiamConfig); 4] {
    [
        ("F-Diam", FdiamConfig::parallel()),
        ("no Winnow", FdiamConfig::parallel().without_winnow()),
        ("no Elim.", FdiamConfig::parallel().without_eliminate()),
        ("no 'u'", FdiamConfig::parallel().without_max_degree_start()),
    ]
}

fn main() {
    let scale = Scale::from_env();
    let runs = runs_from_env();
    let budget = timeout_from_env();
    println!("Table 5 / Figure 9 — F-Diam ablations at scale {scale:?} (median of {runs})\n");

    let mut calls_table = Table::new(vec!["Graphs", "F-Diam", "no Winnow", "no Elim.", "no 'u'"]);
    let mut tput_table = Table::new(vec!["Graphs", "F-Diam", "no Winnow", "no Elim.", "no 'u'"]);
    let mut tputs: [Vec<Option<f64>>; 4] = Default::default();

    for e in filtered_suite() {
        let g = e.build(scale);
        let n = g.num_vertices();
        let mut calls_row = vec![e.name.to_string()];
        let mut tput_row = vec![e.name.to_string()];
        let mut reference: Option<u32> = None;
        for (i, (name, cfg)) in configs().iter().enumerate() {
            let m = measure(runs, budget, || -> FdiamOutcome {
                fdiam_core::diameter_with(&g, cfg)
            });
            match (m.median(), m.result()) {
                (Some(d), Some(out)) => {
                    let diam = out.result.largest_cc_diameter;
                    match reference {
                        None => reference = Some(diam),
                        Some(r) => assert_eq!(r, diam, "{name} disagrees on {}", e.name),
                    }
                    calls_row.push(out.stats.bfs_traversals().to_string());
                    let tp = throughput(n, d);
                    tput_row.push(tput(Some(tp)));
                    tputs[i].push(Some(tp));
                }
                _ => {
                    calls_row.push("T/O".to_string());
                    tput_row.push("T/O".to_string());
                    tputs[i].push(None);
                }
            }
        }
        calls_table.row(calls_row);
        tput_table.row(tput_row);
    }

    println!("Table 5 — number of BFS calls per version:\n");
    print!("{}", calls_table.render());
    println!("\nFigure 9 — throughput (vertices/s) per version:\n");
    print!("{}", tput_table.render());

    println!("\nRelative geomean throughput vs full F-Diam (common inputs):");
    let full = &tputs[0];
    for (i, (name, _)) in configs().iter().enumerate().skip(1) {
        let pairs: Vec<(f64, f64)> = full
            .iter()
            .zip(&tputs[i])
            .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
            .collect();
        if pairs.is_empty() {
            println!("  {name:10}: no common finishes");
            continue;
        }
        let f = geomean(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
        let a = geomean(&pairs.iter().map(|p| p.1).collect::<Vec<_>>());
        println!(
            "  {name:10}: runs at {:.0}% of full speed (paper: no Winnow 2%, no 'u' 17%, no Elim. 22%)",
            100.0 * a / f
        );
    }
}
