//! Regenerates the paper's **Figure 8**: the fraction of F-Diam's
//! runtime spent in each stage (eccentricity BFS, Winnow, Chain
//! Processing, Eliminate, other).
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin fig8
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    let scale_name = format!("{scale:?}").to_lowercase();
    println!("Figure 8 — % of F-Diam runtime per stage at scale {scale:?}\n");
    let mut t = Table::new(vec![
        "Graphs",
        "ecc BFS",
        "Winnow",
        "Chain",
        "Eliminate",
        "other",
        "total (s)",
    ]);
    let mut records = RecordWriter::for_table("fig8", &scale_name);
    for e in filtered_suite() {
        let g = e.build(scale);
        let out = fdiam_core::diameter_with(&g, &FdiamConfig::parallel());
        let f = out.stats.timings.fractions();
        t.row(vec![
            e.name.to_string(),
            format!("{:.1}%", 100.0 * f[0]),
            format!("{:.1}%", 100.0 * f[1]),
            format!("{:.1}%", 100.0 * f[2]),
            format!("{:.1}%", 100.0 * f[3]),
            format!("{:.1}%", 100.0 * f[4]),
            format!("{:.3}", out.stats.timings.total.as_secs_f64()),
        ]);
        records.push(RunRecord {
            table: "fig8",
            code: "fdiam",
            graph: e.name.to_string(),
            paper_name: e.paper_name.to_string(),
            scale: scale_name.clone(),
            n: g.num_vertices(),
            m: g.num_undirected_edges(),
            runs: 1,
            median_secs: Some(out.stats.timings.total.as_secs_f64()),
            diameter: Some(out.result.largest_cc_diameter),
            stage_fractions: Some(f),
            counters: vec![
                ("driver.ecc_computations", out.stats.ecc_computations as u64),
                ("driver.winnow_calls", out.stats.winnow_calls as u64),
                ("driver.eliminate_calls", out.stats.eliminate_calls as u64),
                ("driver.chains_processed", out.stats.chains_processed as u64),
            ],
        });
    }
    print!("{}", t.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }
    println!("\nThe few eccentricity BFS calls dominate the runtime; Winnow is cheap (§6.4).");
}
