//! Regenerates the paper's **Figure 8**: the fraction of F-Diam's
//! runtime spent in each stage (eccentricity BFS, Winnow, Chain
//! Processing, Eliminate, other).
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin fig8
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 8 — % of F-Diam runtime per stage at scale {scale:?}\n");
    let mut t = Table::new(vec![
        "Graphs",
        "ecc BFS",
        "Winnow",
        "Chain",
        "Eliminate",
        "other",
        "total (s)",
    ]);
    for e in filtered_suite() {
        let g = e.build(scale);
        let out = fdiam_core::diameter_with(&g, &FdiamConfig::parallel());
        let f = out.stats.timings.fractions();
        t.row(vec![
            e.name.to_string(),
            format!("{:.1}%", 100.0 * f[0]),
            format!("{:.1}%", 100.0 * f[1]),
            format!("{:.1}%", 100.0 * f[2]),
            format!("{:.1}%", 100.0 * f[3]),
            format!("{:.1}%", 100.0 * f[4]),
            format!("{:.3}", out.stats.timings.total.as_secs_f64()),
        ]);
    }
    print!("{}", t.render());
    println!("\nThe few eccentricity BFS calls dominate the runtime; Winnow is cheap (§6.4).");
}
