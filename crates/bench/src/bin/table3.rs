//! Regenerates the paper's **Table 3**: number of BFS traversals
//! performed by F-Diam, iFUB, and Graph-Diameter on each input.
//!
//! Counting convention (§6.3): for F-Diam a traversal is an
//! eccentricity computation *or* a Winnow invocation; Eliminate is not
//! counted. The baselines count every BFS they launch.
//!
//! ```text
//! SCALE=small cargo run -p fdiam-bench --release --bin table3
//! ```

use fdiam_baselines::{graph_diameter, ifub};
use fdiam_bench::format::Table;
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    let scale_name = format!("{scale:?}").to_lowercase();
    println!("Table 3 — number of BFS traversals at scale {scale:?}\n");
    let mut t = Table::new(vec!["Graphs", "F-Diam", "iFUB", "Graph-Diameter", "n"]);
    let mut records = RecordWriter::for_table("table3", &scale_name);
    for e in filtered_suite() {
        let g = e.build(scale);
        let fd = fdiam_core::diameter_with(&g, &FdiamConfig::parallel());
        let ifub_r = ifub::ifub(&g);
        let gd = graph_diameter::graph_diameter(&g);
        assert_eq!(
            fd.result.largest_cc_diameter, ifub_r.largest_cc_diameter,
            "disagreement on {}",
            e.name
        );
        assert_eq!(
            fd.result.largest_cc_diameter, gd.largest_cc_diameter,
            "disagreement on {}",
            e.name
        );
        t.row(vec![
            e.name.to_string(),
            fd.stats.bfs_traversals().to_string(),
            ifub_r.bfs_calls.to_string(),
            gd.bfs_calls.to_string(),
            g.num_vertices().to_string(),
        ]);
        let base = |code: &'static str| RunRecord {
            table: "table3",
            code,
            graph: e.name.to_string(),
            paper_name: e.paper_name.to_string(),
            scale: scale_name.clone(),
            n: g.num_vertices(),
            m: g.num_undirected_edges(),
            runs: 0,
            median_secs: None,
            diameter: Some(fd.result.largest_cc_diameter),
            stage_fractions: None,
            counters: Vec::new(),
        };
        records.push(RunRecord {
            counters: vec![
                ("bfs.traversals", fd.stats.bfs_traversals() as u64),
                ("driver.ecc_computations", fd.stats.ecc_computations as u64),
                ("driver.winnow_calls", fd.stats.winnow_calls as u64),
                ("driver.eliminate_calls", fd.stats.eliminate_calls as u64),
                ("driver.chains_processed", fd.stats.chains_processed as u64),
            ],
            ..base("fdiam")
        });
        records.push(RunRecord {
            counters: vec![("bfs.traversals", ifub_r.bfs_calls as u64)],
            ..base("ifub")
        });
        records.push(RunRecord {
            counters: vec![("bfs.traversals", gd.bfs_calls as u64)],
            ..base("graph-diameter")
        });
    }
    print!("{}", t.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }
    println!("\nAll three codes traverse orders of magnitude fewer than n BFS (§6.3).");
}
