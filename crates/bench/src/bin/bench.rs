//! The bench-regression CLI: `summarize` folds JSONL run records into a
//! `BENCH_<rev>.json` summary; `compare` diffs two summaries and exits
//! nonzero on a regression beyond the tolerance; `trajectory` appends
//! summaries to the dedup-by-rev perf history
//! (`results/trajectory.jsonl`). See [`fdiam_bench::compare`] for
//! formats and semantics.
//!
//! ```text
//! cargo run -p fdiam-bench --release --bin bench -- \
//!   summarize results/table2_fig6_small.jsonl --out BENCH_$(git rev-parse --short HEAD).json
//! cargo run -p fdiam-bench --release --bin bench -- \
//!   compare results/baseline-small.json BENCH_abc1234.json --tolerance 0.25
//! cargo run -p fdiam-bench --release --bin bench -- \
//!   trajectory BENCH_abc1234.json --out results/trajectory.jsonl
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(fdiam_bench::compare::cli_main(&args));
}
