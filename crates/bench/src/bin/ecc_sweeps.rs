//! All-eccentricities sweep shootout: the serial bounding-ecc driver
//! vs the same driver batching its exact phase through the bit-parallel
//! 64-source BFS kernel (`bp64`). This is the benchmark behind the
//! "bit-parallel lanes pay for themselves" claim: both codes compute
//! the identical exact eccentricity vector; only the traversal engine
//! differs.
//!
//! ```text
//! SCALE=small FDIAM_RUNS=3 FDIAM_TIMEOUT_SECS=120 \
//!   cargo run -p fdiam-bench --release --bin ecc_sweeps
//! ```
//!
//! Emits one JSONL run record per code×graph (table `ecc_sweeps`) so
//! the `bench summarize`/`compare` regression harness picks the keys up
//! alongside the table2 diameter codes.

use fdiam_analytics::bounding_ecc::bounding_eccentricities;
use fdiam_analytics::bounding_eccentricities_batched;
use fdiam_bench::format::{secs, tput, Table};
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::runner::{
    geomean, measure, runs_from_env, throughput, timeout_from_env, Measurement,
};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_bfs::MAX_LANES;
use std::time::Duration;

/// Machine-readable code names matching `CODES` order.
const CODE_IDS: [&str; 2] = ["becc-serial", "becc-bp64"];

const CODES: [&str; 2] = ["Bounding-Ecc (ser)", "Bounding-Ecc (bp64)"];

fn main() {
    let scale = Scale::from_env();
    let runs = runs_from_env();
    let budget = timeout_from_env();
    println!(
        "Eccentricity sweeps — serial vs {MAX_LANES}-lane bit-parallel at scale {scale:?} \
         (median of {runs}, {budget:?} budget)\n"
    );

    let mut time_table = Table::new(vec!["Graphs", CODES[0], CODES[1], "speedup"]);
    let mut tput_table = Table::new(vec!["Graphs", CODES[0], CODES[1]]);
    let mut tputs: [Vec<Option<f64>>; 2] = Default::default();
    let mut speedups = Vec::new();
    let scale_name = format!("{scale:?}").to_lowercase();
    let mut records = RecordWriter::for_table("ecc_sweeps", &scale_name);

    for e in filtered_suite() {
        let g = e.build(scale);
        let n = g.num_vertices();

        let serial = measure(runs, budget, || bounding_eccentricities(&g));
        let bp64 = measure(runs, budget, || {
            bounding_eccentricities_batched(&g, MAX_LANES)
        });

        // cross-check: the lanes must not change a single eccentricity
        if let (Some(s), Some(b)) = (serial.result(), bp64.result()) {
            assert_eq!(
                s.eccentricities, b.eccentricities,
                "bp64 eccentricities disagree with serial on {}",
                e.name
            );
        }

        let medians: [Option<Duration>; 2] = [serial.median(), bp64.median()];
        let speedup = match (medians[0], medians[1]) {
            (Some(s), Some(b)) if b > Duration::ZERO => Some(s.as_secs_f64() / b.as_secs_f64()),
            _ => None,
        };
        if let Some(x) = speedup {
            speedups.push(x);
        }
        time_table.row(vec![
            e.name.to_string(),
            secs(medians[0]),
            secs(medians[1]),
            speedup.map_or("—".to_string(), |x| format!("{x:.2}x")),
        ]);
        let mut tput_row = vec![e.name.to_string()];
        for (i, m) in medians.iter().enumerate() {
            let tp = m.map(|d| throughput(n, d));
            tput_row.push(tput(tp));
            tputs[i].push(tp);
        }
        tput_table.row(tput_row);
        let _ = matches!(bp64, Measurement::Done { .. });

        let diameters = [
            serial.result().map(|r| max_ecc(&r.eccentricities)),
            bp64.result().map(|r| max_ecc(&r.eccentricities)),
        ];
        let calls = [
            serial.result().map(|r| r.bfs_calls),
            bp64.result().map(|r| r.bfs_calls),
        ];
        for i in 0..CODE_IDS.len() {
            records.push(RunRecord {
                table: "ecc_sweeps",
                code: CODE_IDS[i],
                graph: e.name.to_string(),
                paper_name: e.paper_name.to_string(),
                scale: scale_name.clone(),
                n,
                m: g.num_undirected_edges(),
                runs,
                median_secs: medians[i].map(|d| d.as_secs_f64()),
                diameter: diameters[i],
                stage_fractions: None,
                counters: calls[i]
                    .map(|c| vec![("ecc_sweeps", c as u64)])
                    .unwrap_or_default(),
            });
        }
    }

    println!("Median runtimes in seconds (T/O = over budget):\n");
    print!("{}", time_table.render());
    println!("\nThroughput in vertices/second:\n");
    print!("{}", tput_table.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }

    println!("\nGeometric-mean throughput:");
    for (i, code) in CODES.iter().enumerate() {
        let xs: Vec<f64> = tputs[i].iter().flatten().copied().collect();
        println!(
            "  {code:20}: geomean {:.3e} v/s over {} inputs",
            geomean(&xs),
            xs.len()
        );
    }
    if !speedups.is_empty() {
        println!(
            "  bp64 is {:.2}x faster than serial (geomean over {} common inputs)",
            geomean(&speedups),
            speedups.len()
        );
    }
}

/// The diameter implied by an eccentricity vector (largest entry) —
/// recorded so the regression harness's cross-rev diffs can sanity
/// check the sweep output, mirroring the diameter field of the
/// table2 codes.
fn max_ecc(eccs: &[u32]) -> u32 {
    eccs.iter().copied().max().unwrap_or(0)
}
