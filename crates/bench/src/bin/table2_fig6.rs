//! Regenerates the paper's **Table 2** (median runtimes in seconds) and
//! **Figure 6** (throughput in vertices/second, log scale) for the five
//! codes: F-Diam (ser), F-Diam (par), iFUB (ser), iFUB (par), and
//! Graph-Diameter — plus the geometric-mean speedup summary quoted in
//! §6.1.
//!
//! ```text
//! SCALE=small FDIAM_RUNS=3 FDIAM_TIMEOUT_SECS=120 \
//!   cargo run -p fdiam-bench --release --bin table2_fig6
//! ```

use fdiam_baselines::{graph_diameter, ifub};
use fdiam_bench::format::{secs, tput, Table};
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::runner::{
    geomean, measure, runs_from_env, throughput, timeout_from_env, Measurement,
};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;
use std::time::Duration;

/// Machine-readable code names matching `CODES` order.
const CODE_IDS: [&str; 5] = [
    "fdiam-serial",
    "fdiam",
    "ifub",
    "ifub-parallel",
    "graph-diameter",
];

const CODES: [&str; 5] = [
    "F-Diam (ser)",
    "F-Diam (par)",
    "iFUB (ser)",
    "iFUB (par)",
    "Graph-Diam.",
];

fn main() {
    let scale = Scale::from_env();
    let runs = runs_from_env();
    let budget = timeout_from_env();
    println!(
        "Table 2 / Figure 6 — runtimes and throughput at scale {scale:?} (median of {runs}, {budget:?} budget)\n"
    );

    let mut time_table = Table::new(vec![
        "Graphs", CODES[0], CODES[1], CODES[2], CODES[3], CODES[4],
    ]);
    let mut tput_table = Table::new(vec![
        "Graphs", CODES[0], CODES[1], CODES[2], CODES[3], CODES[4],
    ]);
    // throughput[code][input]
    let mut tputs: [Vec<Option<f64>>; 5] = Default::default();
    let scale_name = format!("{scale:?}").to_lowercase();
    let mut records = RecordWriter::for_table("table2_fig6", &scale_name);

    for e in filtered_suite() {
        let g = e.build(scale);
        let n = g.num_vertices();

        let fd_ser = measure(runs, budget, || {
            fdiam_core::diameter_with(&g, &FdiamConfig::serial()).result
        });
        let fd_par = measure(runs, budget, || {
            fdiam_core::diameter_with(&g, &FdiamConfig::parallel()).result
        });
        let ifub_ser = measure(runs, budget, || ifub::ifub(&g));
        let ifub_par = measure(runs, budget, || ifub::ifub_parallel(&g));
        let gd = measure(runs, budget, || graph_diameter::graph_diameter(&g));

        // cross-check: every code that finished must agree
        let reference = fd_par
            .result()
            .map(|r| r.largest_cc_diameter)
            .expect("F-Diam must finish");
        for (name, got) in [
            (CODES[0], fd_ser.result().map(|r| r.largest_cc_diameter)),
            (CODES[2], ifub_ser.result().map(|r| r.largest_cc_diameter)),
            (CODES[3], ifub_par.result().map(|r| r.largest_cc_diameter)),
            (CODES[4], gd.result().map(|r| r.largest_cc_diameter)),
        ] {
            if let Some(d) = got {
                assert_eq!(d, reference, "{name} disagrees on {}", e.name);
            }
        }

        let medians: [Option<Duration>; 5] = [
            fd_ser.median(),
            fd_par.median(),
            ifub_ser.median(),
            ifub_par.median(),
            gd.median(),
        ];
        time_table.row(vec![
            e.name.to_string(),
            secs(medians[0]),
            secs(medians[1]),
            secs(medians[2]),
            secs(medians[3]),
            secs(medians[4]),
        ]);
        let mut tput_row = vec![e.name.to_string()];
        for (i, m) in medians.iter().enumerate() {
            let tp = m.map(|d| throughput(n, d));
            tput_row.push(tput(tp));
            tputs[i].push(tp);
        }
        tput_table.row(tput_row);
        let _ = matches!(fd_par, Measurement::Done { .. });

        let diameters = [
            fd_ser.result().map(|r| r.largest_cc_diameter),
            fd_par.result().map(|r| r.largest_cc_diameter),
            ifub_ser.result().map(|r| r.largest_cc_diameter),
            ifub_par.result().map(|r| r.largest_cc_diameter),
            gd.result().map(|r| r.largest_cc_diameter),
        ];
        for i in 0..CODE_IDS.len() {
            records.push(RunRecord {
                table: "table2_fig6",
                code: CODE_IDS[i],
                graph: e.name.to_string(),
                paper_name: e.paper_name.to_string(),
                scale: scale_name.clone(),
                n,
                m: g.num_undirected_edges(),
                runs,
                median_secs: medians[i].map(|d| d.as_secs_f64()),
                diameter: diameters[i],
                stage_fractions: None,
                counters: Vec::new(),
            });
        }
    }

    println!("Table 2 — median runtimes in seconds (T/O = over budget):\n");
    print!("{}", time_table.render());
    println!("\nFigure 6 — throughput in vertices/second (plot on a log axis):\n");
    print!("{}", tput_table.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }

    // Geometric-mean speedups over commonly-finished inputs (§6.1
    // footnote 2: "speedups are computed based on the geometric-mean
    // throughput over only the inputs on which neither code times out").
    println!("\nGeometric-mean throughput and speedups vs F-Diam:");
    let fd_ser_t = &tputs[0];
    let fd_par_t = &tputs[1];
    for (i, code) in CODES.iter().enumerate() {
        let xs: Vec<f64> = tputs[i].iter().flatten().copied().collect();
        println!(
            "  {code:13}: geomean {:.3e} v/s over {} inputs",
            geomean(&xs),
            xs.len()
        );
    }
    for (base_name, base) in [(CODES[0], fd_ser_t), (CODES[1], fd_par_t)] {
        for (i, code) in CODES.iter().enumerate().skip(2) {
            let pairs: Vec<(f64, f64)> = base
                .iter()
                .zip(&tputs[i])
                .filter_map(|(a, b)| Some(((*a)?, (*b)?)))
                .collect();
            if pairs.is_empty() {
                continue;
            }
            let ours = geomean(&pairs.iter().map(|p| p.0).collect::<Vec<_>>());
            let theirs = geomean(&pairs.iter().map(|p| p.1).collect::<Vec<_>>());
            println!(
                "  {base_name} is {:>8.1}x faster than {code} (over {} common inputs)",
                ours / theirs,
                pairs.len()
            );
        }
    }
}
