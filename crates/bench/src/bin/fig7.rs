//! Regenerates the paper's **Figure 7**: geometric-mean F-Diam
//! throughput over all inputs as a function of thread count.
//!
//! Thread counts sweep powers of two up to `FDIAM_MAX_THREADS` (default:
//! the host's logical CPU count). On a single-core host the curve is
//! necessarily flat — the sweep still exercises the thread-pool
//! machinery and records the measured numbers.
//!
//! ```text
//! SCALE=small FDIAM_MAX_THREADS=8 cargo run -p fdiam-bench --release --bin fig7
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::runner::{geomean, measure, runs_from_env, throughput, timeout_from_env};
use fdiam_bench::suite::{filtered_suite, Scale};
use fdiam_core::FdiamConfig;

fn main() {
    let scale = Scale::from_env();
    let runs = runs_from_env();
    let budget = timeout_from_env();
    let max_threads: usize = std::env::var("FDIAM_MAX_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
    let mut thread_counts = vec![1usize];
    while *thread_counts.last().unwrap() * 2 <= max_threads {
        thread_counts.push(thread_counts.last().unwrap() * 2);
    }

    println!(
        "Figure 7 — F-Diam geomean throughput vs thread count at scale {scale:?} \
         (host parallelism: {})\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );

    let graphs: Vec<_> = filtered_suite()
        .into_iter()
        .map(|e| (e.name, e.build(scale)))
        .collect();

    let mut t = Table::new(vec!["threads", "geomean throughput (v/s)", "speedup vs 1T"]);
    let mut base: Option<f64> = None;
    for &threads in &thread_counts {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let mut tputs = Vec::new();
        for (_, g) in &graphs {
            let m = pool.install(|| {
                measure(runs, budget, || {
                    fdiam_core::diameter_with(g, &FdiamConfig::parallel()).result
                })
            });
            if let Some(d) = m.median() {
                tputs.push(throughput(g.num_vertices(), d));
            }
        }
        let gm = geomean(&tputs);
        let speedup = match base {
            None => {
                base = Some(gm);
                1.0
            }
            Some(b) => gm / b,
        };
        t.row(vec![
            threads.to_string(),
            format!("{gm:.3e}"),
            format!("{speedup:.2}x"),
        ]);
    }
    print!("{}", t.render());
}
