//! Runs every experiment in sequence — the one-command reproduction of
//! the paper's whole evaluation section at the current `SCALE`.
//!
//! ```text
//! SCALE=medium cargo run -p fdiam-bench --release --bin all
//! ```

use std::process::Command;

const BINARIES: [&str; 9] = [
    "table1",
    "table2_fig6",
    "ecc_sweeps",
    "dir_diam",
    "table3",
    "table4",
    "fig8",
    "table5_fig9",
    "fig7",
];

fn main() {
    let self_path = std::env::current_exe().expect("current_exe");
    let dir = self_path.parent().expect("binary directory");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n======== {bin} ========\n");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
