//! Directed diameter shootout: the serial directed ExactSumSweep vs
//! the same driver batching its sweeps through the bit-parallel
//! 64-source BFS kernel, on the directed input suite (two strongly
//! connected orientations — see [`fdiam_bench::suite::directed_suite`]).
//! Both codes certify the same exact diameter and radius; only the
//! traversal engine differs.
//!
//! ```text
//! SCALE=small FDIAM_RUNS=3 FDIAM_TIMEOUT_SECS=120 \
//!   cargo run -p fdiam-bench --release --bin dir_diam
//! ```
//!
//! Emits one JSONL run record per code×graph (table `dir_diam`) so the
//! `bench summarize`/`compare` regression harness tracks the directed
//! keys alongside the undirected ones.

use fdiam_analytics::{directed_sum_sweep, directed_sum_sweep_batched};
use fdiam_bench::format::{secs, tput, Table};
use fdiam_bench::record::{RecordWriter, RunRecord};
use fdiam_bench::runner::{
    geomean, measure, runs_from_env, throughput, timeout_from_env, Measurement,
};
use fdiam_bench::suite::{directed_suite, Scale};
use fdiam_bfs::MAX_LANES;
use std::time::Duration;

/// Machine-readable code names matching `CODES` order.
const CODE_IDS: [&str; 2] = ["sum-sweep-dir", "sum-sweep-dir-bp64"];

const CODES: [&str; 2] = ["SumSweep-dir (ser)", "SumSweep-dir (bp64)"];

fn main() {
    let scale = Scale::from_env();
    let runs = runs_from_env();
    let budget = timeout_from_env();
    println!(
        "Directed diameter — serial vs {MAX_LANES}-lane bit-parallel SumSweep at scale \
         {scale:?} (median of {runs}, {budget:?} budget)\n"
    );

    let mut time_table = Table::new(vec!["Graphs", CODES[0], CODES[1], "speedup"]);
    let mut tput_table = Table::new(vec!["Graphs", CODES[0], CODES[1]]);
    let mut tputs: [Vec<Option<f64>>; 2] = Default::default();
    let mut speedups = Vec::new();
    let scale_name = format!("{scale:?}").to_lowercase();
    let mut records = RecordWriter::for_table("dir_diam", &scale_name);

    for e in directed_suite() {
        let g = e.build(scale);
        let n = g.num_vertices();

        let serial = measure(runs, budget, || directed_sum_sweep(&g));
        let bp64 = measure(runs, budget, || directed_sum_sweep_batched(&g, MAX_LANES));

        // cross-check: the lanes must not change the certified answer
        if let (Some(Some(s)), Some(Some(b))) = (serial.result(), bp64.result()) {
            assert_eq!(
                (s.diameter, s.radius),
                (b.diameter, b.radius),
                "bp64 directed aggregates disagree with serial on {}",
                e.name
            );
            assert!(
                s.strongly_connected,
                "{} lost strong connectivity — the bench would time the \
                 Tarjan short-circuit, not the sweeps",
                e.name
            );
        }

        let medians: [Option<Duration>; 2] = [serial.median(), bp64.median()];
        let speedup = match (medians[0], medians[1]) {
            (Some(s), Some(b)) if b > Duration::ZERO => Some(s.as_secs_f64() / b.as_secs_f64()),
            _ => None,
        };
        if let Some(x) = speedup {
            speedups.push(x);
        }
        time_table.row(vec![
            e.name.to_string(),
            secs(medians[0]),
            secs(medians[1]),
            speedup.map_or("—".to_string(), |x| format!("{x:.2}x")),
        ]);
        let mut tput_row = vec![e.name.to_string()];
        for (i, m) in medians.iter().enumerate() {
            let tp = m.map(|d| throughput(n, d));
            tput_row.push(tput(tp));
            tputs[i].push(tp);
        }
        tput_table.row(tput_row);
        let _ = matches!(bp64, Measurement::Done { .. });

        let results = [
            serial.result().and_then(Option::as_ref),
            bp64.result().and_then(Option::as_ref),
        ];
        for i in 0..CODE_IDS.len() {
            records.push(RunRecord {
                table: "dir_diam",
                code: CODE_IDS[i],
                graph: e.name.to_string(),
                paper_name: e.paper_name.to_string(),
                scale: scale_name.clone(),
                n,
                m: g.num_arcs(),
                runs,
                median_secs: medians[i].map(|d| d.as_secs_f64()),
                diameter: results[i].and_then(|r| r.diameter),
                stage_fractions: None,
                counters: results[i]
                    .map(|r| vec![("dir_bfs", r.bfs_calls as u64)])
                    .unwrap_or_default(),
            });
        }
    }

    println!("Median runtimes in seconds (T/O = over budget):\n");
    print!("{}", time_table.render());
    println!("\nThroughput in vertices/second:\n");
    print!("{}", tput_table.render());
    match records.flush() {
        Ok(path) => println!("\nrecords: {}", path.display()),
        Err(e) => eprintln!("warning: could not write run records: {e}"),
    }

    println!("\nGeometric-mean throughput:");
    for (i, code) in CODES.iter().enumerate() {
        let xs: Vec<f64> = tputs[i].iter().flatten().copied().collect();
        println!(
            "  {code:20}: geomean {:.3e} v/s over {} inputs",
            geomean(&xs),
            xs.len()
        );
    }
    if !speedups.is_empty() {
        println!(
            "  bp64 is {:.2}x faster than serial (geomean over {} common inputs)",
            geomean(&speedups),
            speedups.len()
        );
    }
}
