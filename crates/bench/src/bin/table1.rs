//! Regenerates the paper's **Table 1**: the input-graph inventory
//! (name, type, vertices, edges incl. back edges, average degree,
//! maximum degree, largest CC diameter).
//!
//! ```text
//! SCALE=small|large cargo run -p fdiam-bench --release --bin table1
//! ```

use fdiam_bench::format::Table;
use fdiam_bench::suite::{filtered_suite, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("Table 1 analogue — input graphs at scale {scale:?}\n");
    let mut t = Table::new(vec![
        "name",
        "stands for",
        "type",
        "vertices",
        "edges",
        "avg degree",
        "max degree",
        "CC diameter",
        "(paper's)",
    ]);
    for e in filtered_suite() {
        let g = e.build(scale);
        let r = fdiam_core::diameter(&g);
        t.row(vec![
            e.name.to_string(),
            e.paper_name.to_string(),
            e.class.to_string(),
            g.num_vertices().to_string(),
            g.num_arcs().to_string(),
            format!("{:.1}", g.avg_degree()),
            g.max_degree().to_string(),
            format!(
                "{}{}",
                r.largest_cc_diameter,
                if r.connected { "" } else { " (disconnected)" }
            ),
            e.paper_cc_diameter.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!("\nNote: synthetic analogues reproduce each paper input's topology class;");
    println!("absolute sizes and diameters scale with SCALE (see DESIGN.md §3–4).");
}
