//! The input suite: scaled synthetic analogues of the paper's Table 1.
//!
//! The original evaluation uses 17 public graphs of up to 50.9 M
//! vertices; this harness substitutes deterministic generator
//! configurations of matching topology class (see DESIGN.md §3–4).
//! `SCALE=small` (default) targets single-digit seconds per algorithm
//! on a laptop core; `SCALE=large` approaches the paper's regime for
//! machines with memory and hours to spare.

use fdiam_graph::generators::*;
use fdiam_graph::transform::orient;
use fdiam_graph::{CsrGraph, DiGraph};

/// Input scale, selected by the `SCALE` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Thousands of vertices — seconds per experiment (default).
    Small,
    /// Tens of thousands of vertices — minutes for the full suite;
    /// large enough for the asymptotic effects (full-graph bound
    /// updates vs partial BFS) to show.
    Medium,
    /// Hundreds of thousands of vertices — the paper's regime, hours.
    Large,
}

impl Scale {
    /// Reads `SCALE` from the environment (`small` / `medium` / `large`).
    pub fn from_env() -> Scale {
        match std::env::var("SCALE").as_deref() {
            Ok("large") | Ok("LARGE") => Scale::Large,
            Ok("medium") | Ok("MEDIUM") => Scale::Medium,
            _ => Scale::Small,
        }
    }
}

/// One suite input: a paper graph and its generator analogue.
pub struct SuiteEntry {
    /// Short name used in our output tables.
    pub name: &'static str,
    /// The paper input this stands in for.
    pub paper_name: &'static str,
    /// Topology class (Table 1's "type" column).
    pub class: &'static str,
    /// Diameter reported by the paper for the original graph
    /// (Table 1 "CC diameter") — for shape comparison only.
    pub paper_cc_diameter: u32,
    build: fn(Scale) -> CsrGraph,
}

impl SuiteEntry {
    /// Generates the graph at the given scale.
    pub fn build(&self, scale: Scale) -> CsrGraph {
        (self.build)(scale)
    }
}

/// The suite, restricted by the `FDIAM_ONLY` environment variable
/// (comma-separated substrings of entry names) when set — handy for
/// quick single-input experiment runs.
pub fn filtered_suite() -> Vec<SuiteEntry> {
    let all = suite();
    match std::env::var("FDIAM_ONLY") {
        Err(_) => all,
        Ok(filter) => {
            let wanted: Vec<&str> = filter.split(',').map(str::trim).collect();
            all.into_iter()
                .filter(|e| wanted.iter().any(|w| !w.is_empty() && e.name.contains(w)))
                .collect()
        }
    }
}

/// Power-law analogue: a preferential-attachment core plus peripheral
/// whiskers (0.5 % of n, max length tuned per input) — real co-purchase
/// / citation / web graphs owe their Table 1 diameters (20–45) to such
/// tendrils, not to the core, and the tendrils are what makes the
/// paper's Winnow ball cover >99 % of the graph (Table 4).
fn whiskered_ba(n: usize, m: usize, max_whisker: usize, seed: u64) -> CsrGraph {
    let core = barabasi_albert(n, m, seed);
    // diamond tendrils of depth ⌈L/2⌉ add ≈ L hops each (see
    // `attach_tendrils`); 0.5 % of n tendrils, mostly pendant stubs
    attach_tendrils(
        &core,
        (n / 200).max(2),
        max_whisker.div_ceil(2),
        seed ^ 0x57,
    )
}

/// Seed base so every entry is deterministic yet distinct.
const SEED: u64 = 0xF_D1A_u64;

/// The 17-input suite in the paper's (alphabetical) Table 1 order.
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "grid2d.sym",
            paper_name: "2d-2e20.sym",
            class: "grid",
            paper_cc_diameter: 2046,
            build: |s| match s {
                Scale::Small => grid2d(64, 64),
                Scale::Medium => grid2d(180, 180),
                Scale::Large => grid2d(724, 724),
            },
        },
        SuiteEntry {
            name: "amazon-like",
            paper_name: "amazon0601",
            class: "product co-purchases",
            paper_cc_diameter: 25,
            build: |s| match s {
                Scale::Small => whiskered_ba(8_000, 6, 10, SEED + 1),
                Scale::Medium => whiskered_ba(60_000, 6, 10, SEED + 1),
                Scale::Large => whiskered_ba(200_000, 6, 10, SEED + 1),
            },
        },
        SuiteEntry {
            name: "skitter-like",
            paper_name: "as-skitter",
            class: "Internet topology",
            paper_cc_diameter: 31,
            build: |s| match s {
                Scale::Small => whiskered_ba(12_000, 7, 13, SEED + 2),
                Scale::Medium => whiskered_ba(90_000, 7, 13, SEED + 2),
                Scale::Large => whiskered_ba(300_000, 7, 13, SEED + 2),
            },
        },
        SuiteEntry {
            name: "citeseer-like",
            paper_name: "citationCiteSeer",
            class: "publication citations",
            paper_cc_diameter: 36,
            build: |s| match s {
                Scale::Small => whiskered_ba(6_000, 4, 16, SEED + 3),
                Scale::Medium => whiskered_ba(45_000, 4, 16, SEED + 3),
                Scale::Large => whiskered_ba(130_000, 4, 16, SEED + 3),
            },
        },
        SuiteEntry {
            name: "patents-like",
            paper_name: "cit-Patents",
            class: "patent citations",
            paper_cc_diameter: 26,
            build: |s| match s {
                Scale::Small => whiskered_ba(16_000, 4, 11, SEED + 4),
                Scale::Medium => whiskered_ba(120_000, 4, 11, SEED + 4),
                Scale::Large => whiskered_ba(500_000, 4, 11, SEED + 4),
            },
        },
        SuiteEntry {
            name: "copapers-like",
            paper_name: "coPapersDBLP",
            class: "publication citations",
            paper_cc_diameter: 23,
            build: |s| match s {
                Scale::Small => whiskered_ba(4_000, 28, 9, SEED + 5),
                Scale::Medium => whiskered_ba(30_000, 28, 9, SEED + 5),
                Scale::Large => whiskered_ba(100_000, 28, 9, SEED + 5),
            },
        },
        SuiteEntry {
            name: "delaunay-like",
            paper_name: "delaunay_n24",
            class: "triangulation",
            paper_cc_diameter: 1722,
            build: |s| {
                let n = match s {
                    Scale::Small => 8_000usize,
                    Scale::Medium => 60_000,
                    Scale::Large => 400_000,
                };
                // 1.8·sqrt(1/n) sits just under the connectivity
                // threshold sqrt(ln n / (pi n)), leaving a handful of
                // stragglers — reported via the same largest-CC
                // convention the paper uses for its disconnected
                // rmat/kron inputs
                random_geometric(n, 1.8 * (1.0 / n as f64).sqrt(), SEED + 6)
            },
        },
        SuiteEntry {
            name: "europe-osm-like",
            paper_name: "europe_osm",
            class: "road map",
            paper_cc_diameter: 30102,
            build: |s| match s {
                Scale::Small => road_network(20_000, 0.5, 4, SEED + 7),
                Scale::Medium => road_network(140_000, 0.5, 4, SEED + 7),
                Scale::Large => road_network(600_000, 0.5, 4, SEED + 7),
            },
        },
        SuiteEntry {
            name: "in2004-like",
            paper_name: "in-2004",
            class: "web links",
            paper_cc_diameter: 43,
            build: |s| match s {
                Scale::Small => whiskered_ba(8_000, 10, 19, SEED + 8),
                Scale::Medium => whiskered_ba(60_000, 10, 19, SEED + 8),
                Scale::Large => whiskered_ba(250_000, 10, 19, SEED + 8),
            },
        },
        SuiteEntry {
            name: "internet-like",
            paper_name: "internet",
            class: "Internet topology",
            paper_cc_diameter: 30,
            build: |s| match s {
                Scale::Small => whiskered_ba(4_000, 2, 13, SEED + 9),
                Scale::Medium => whiskered_ba(30_000, 2, 13, SEED + 9),
                Scale::Large => whiskered_ba(62_000, 2, 13, SEED + 9),
            },
        },
        SuiteEntry {
            name: "kron-like",
            paper_name: "kron_g500-logn21",
            class: "Kronecker",
            paper_cc_diameter: 7,
            build: |s| match s {
                Scale::Small => kronecker_graph500(12, 16, SEED + 10),
                Scale::Medium => kronecker_graph500(15, 24, SEED + 10),
                Scale::Large => kronecker_graph500(18, 43, SEED + 10),
            },
        },
        SuiteEntry {
            name: "rmat16-like",
            paper_name: "rmat16.sym",
            class: "RMAT",
            paper_cc_diameter: 14,
            build: |s| match s {
                Scale::Small => rmat(12, 7, RmatProbabilities::GTGRAPH, SEED + 11),
                // the paper's actual rmat16 scale
                Scale::Medium => rmat(16, 7, RmatProbabilities::GTGRAPH, SEED + 11),
                // same scale as the paper's rmat16
                Scale::Large => rmat(16, 7, RmatProbabilities::GTGRAPH, SEED + 11),
            },
        },
        SuiteEntry {
            name: "rmat22-like",
            paper_name: "rmat22.sym",
            class: "RMAT",
            paper_cc_diameter: 18,
            build: |s| match s {
                Scale::Small => rmat(13, 8, RmatProbabilities::GTGRAPH, SEED + 12),
                Scale::Medium => rmat(16, 8, RmatProbabilities::GTGRAPH, SEED + 12),
                Scale::Large => rmat(19, 8, RmatProbabilities::GTGRAPH, SEED + 12),
            },
        },
        SuiteEntry {
            name: "livejournal-like",
            paper_name: "soc-LiveJournal1",
            class: "journal community",
            paper_cc_diameter: 20,
            build: |s| match s {
                Scale::Small => whiskered_ba(12_000, 9, 8, SEED + 13),
                Scale::Medium => whiskered_ba(90_000, 9, 8, SEED + 13),
                Scale::Large => whiskered_ba(400_000, 9, 8, SEED + 13),
            },
        },
        SuiteEntry {
            name: "uk2002-like",
            paper_name: "uk-2002",
            class: "web links",
            paper_cc_diameter: 45,
            build: |s| match s {
                Scale::Small => whiskered_ba(8_000, 14, 20, SEED + 14),
                Scale::Medium => whiskered_ba(60_000, 14, 20, SEED + 14),
                Scale::Large => whiskered_ba(500_000, 14, 20, SEED + 14),
            },
        },
        SuiteEntry {
            name: "road-ny-like",
            paper_name: "USA-road-d.NY",
            class: "road map",
            paper_cc_diameter: 720,
            build: |s| match s {
                Scale::Small => road_network(8_000, 0.9, 2, SEED + 15),
                Scale::Medium => road_network(60_000, 0.9, 2, SEED + 15),
                Scale::Large => road_network(132_000, 0.9, 2, SEED + 15),
            },
        },
        SuiteEntry {
            name: "road-usa-like",
            paper_name: "USA-road-d.USA",
            class: "road map",
            paper_cc_diameter: 8440,
            build: |s| match s {
                Scale::Small => road_network(24_000, 0.7, 3, SEED + 16),
                Scale::Medium => road_network(160_000, 0.7, 3, SEED + 16),
                Scale::Large => road_network(1_000_000, 0.7, 3, SEED + 16),
            },
        },
    ]
}

/// One directed suite input: a seeded [`orient`] orientation of an
/// undirected generator, parameterized like [`SuiteEntry`].
///
/// Both entries are (empirically, pinned by a suite test) strongly
/// connected at every scale, so the directed SumSweep runs its full
/// forward/backward sweep schedule instead of short-circuiting at the
/// Tarjan certificate — the thing the `dir_diam` benchmark times.
pub struct DirectedSuiteEntry {
    /// Short name used in our output tables.
    pub name: &'static str,
    /// The real-world directed graph shape this stands in for.
    pub paper_name: &'static str,
    /// Topology class.
    pub class: &'static str,
    /// Percentage of undirected edges kept bidirectional by [`orient`];
    /// the rest become single arcs of random direction.
    pub bidirectional_pct: u32,
    build: fn(Scale) -> DiGraph,
}

impl DirectedSuiteEntry {
    /// Generates the digraph at the given scale.
    pub fn build(&self, scale: Scale) -> DiGraph {
        (self.build)(scale)
    }
}

/// Orientation seeds, offset from [`SEED`] so the arc coin flips are
/// independent of every undirected entry.
const DIR_SEED: u64 = SEED ^ 0xD1_5EED;

/// The rotor orientation of a wrap-around grid: every horizontal edge
/// points east, every vertical edge south, so each row and each column
/// is a directed cycle and the digraph is strongly connected *by
/// construction* at every scale (a random `orient` of the same torus
/// traps vertices already at medium scale). This is the directed
/// worst case for eccentricity-bound drivers: the vertex-transitive
/// symmetry keeps every forward and backward eccentricity equal, so
/// nothing resolves until the bounds meet.
fn oriented_torus(rows: usize, cols: usize) -> DiGraph {
    let n = rows * cols;
    let mut el = fdiam_graph::EdgeList::new(n);
    let at = |r: usize, c: usize| (r * cols + c) as u32;
    for r in 0..rows {
        for c in 0..cols {
            el.push(at(r, c), at(r, (c + 1) % cols));
            el.push(at(r, c), at((r + 1) % rows, c));
        }
    }
    DiGraph::from_edge_list(&el)
}

/// The directed input suite: two oriented graphs covering the two
/// regimes the directed driver cares about — a mesh whose wrap-around
/// symmetry keeps every eccentricity equal (Eliminate never fires, the
/// directed worst case) and an expander-like random digraph where the
/// sweeps converge in a handful of rounds.
///
/// Deliberately *not* part of [`suite`]: that suite's contract (and
/// its tests) is symmetric CSR inputs, and `FDIAM_ONLY` filtering is
/// unnecessary at two entries — `dir_diam` always runs both.
pub fn directed_suite() -> Vec<DirectedSuiteEntry> {
    vec![
        DirectedSuiteEntry {
            name: "torus.dir",
            paper_name: "one-way street torus",
            class: "grid (oriented)",
            bidirectional_pct: 0,
            build: |s| match s {
                Scale::Small => oriented_torus(64, 64),
                Scale::Medium => oriented_torus(180, 180),
                Scale::Large => oriented_torus(724, 724),
            },
        },
        DirectedSuiteEntry {
            name: "gnm.dir",
            paper_name: "random digraph",
            class: "Erdős–Rényi (oriented)",
            bidirectional_pct: 50,
            build: |s| {
                let (n, m) = match s {
                    Scale::Small => (6_000, 60_000),
                    Scale::Medium => (45_000, 450_000),
                    Scale::Large => (200_000, 2_000_000),
                };
                // average degree 20 ≫ ln n: minimum in-/out-degree
                // stays positive after orientation and the digraph is
                // strongly connected with overwhelming probability.
                orient(&erdos_renyi_gnm(n, m, DIR_SEED + 1), 50, DIR_SEED + 1)
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_17_entries_like_table1() {
        assert_eq!(suite().len(), 17);
    }

    #[test]
    fn names_unique() {
        let s = suite();
        let mut names: Vec<_> = s.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn small_scale_builds_are_valid_and_deterministic() {
        for e in suite() {
            let g = e.build(Scale::Small);
            assert!(g.validate().is_ok(), "{} invalid", e.name);
            assert!(g.num_vertices() >= 4_000, "{} too small", e.name);
            assert!(g.is_symmetric(), "{} not symmetric", e.name);
            let g2 = e.build(Scale::Small);
            assert_eq!(g, g2, "{} not deterministic", e.name);
        }
    }

    #[test]
    fn directed_suite_is_strongly_connected_and_deterministic() {
        let entries = directed_suite();
        assert_eq!(entries.len(), 2);
        for e in entries {
            let g = e.build(Scale::Small);
            assert!(g.validate().is_ok(), "{} invalid", e.name);
            assert!(g.num_vertices() >= 4_000, "{} too small", e.name);
            assert!(
                !g.is_symmetric(),
                "{} degenerated to a symmetric digraph",
                e.name
            );
            // The whole point of the directed bench inputs: the
            // SumSweep must do real sweep work, not exit at the
            // Tarjan infinite-diameter certificate.
            let scc = fdiam_analytics::StronglyConnectedComponents::compute(&g);
            assert!(
                scc.is_strongly_connected(),
                "{} not strongly connected ({} SCCs)",
                e.name,
                scc.num_components()
            );
            let g2 = e.build(Scale::Small);
            assert_eq!(g, g2, "{} not deterministic", e.name);
        }
    }

    #[test]
    fn scale_from_env_defaults_small() {
        // NB: env var not set in tests
        assert_eq!(Scale::from_env(), Scale::Small);
    }

    #[test]
    fn topology_classes_match_paper_shapes() {
        let entries = suite();
        let by_name = |n: &str| {
            entries
                .iter()
                .find(|e| e.name == n)
                .unwrap()
                .build(Scale::Small)
        };
        // road analogues: low average degree, tiny max degree
        let road = by_name("europe-osm-like");
        assert!(road.avg_degree() < 3.0);
        assert!(road.max_degree() <= 4);
        // kron analogue: isolated vertices + extreme hub
        let kron = by_name("kron-like");
        assert!(kron.num_isolated_vertices() > 0);
        assert!(kron.max_degree() > 100);
        // power-law analogue: hub far above average
        let ba = by_name("livejournal-like");
        assert!(ba.max_degree() as f64 > 10.0 * ba.avg_degree());
        // grid: 4-regular interior
        let grid = by_name("grid2d.sym");
        assert_eq!(grid.max_degree(), 4);
    }
}
