//! Measurement utilities: median-of-N timing with a soft wall-clock
//! budget, throughput, and geometric means — the paper's methodology
//! (§5: 9 runs, median, 2.5 h timeout per input, throughput =
//! vertices/second).

use std::time::{Duration, Instant};

/// Number of repetitions per measurement (`FDIAM_RUNS`, default 3; the
/// paper uses 9). An unparsable or non-positive value warns on stderr
/// and falls back to the default instead of being silently ignored.
pub fn runs_from_env() -> usize {
    let (runs, warning) = parse_runs(std::env::var("FDIAM_RUNS").ok().as_deref());
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    runs
}

fn parse_runs(raw: Option<&str>) -> (usize, Option<String>) {
    const DEFAULT: usize = 3;
    match raw {
        // `FDIAM_RUNS=""` (e.g. an unset CI matrix variable expanding
        // to the empty string) means "unset", not "garbage" — no warning.
        None => (DEFAULT, None),
        Some(s) if s.trim().is_empty() => (DEFAULT, None),
        Some(s) => match s.trim().parse::<usize>() {
            Ok(r) if r > 0 => (r, None),
            Ok(_) => (
                DEFAULT,
                Some(format!(
                    "FDIAM_RUNS must be positive, got '{s}'; using default {DEFAULT}"
                )),
            ),
            Err(_) => (
                DEFAULT,
                Some(format!(
                    "FDIAM_RUNS is not a valid run count: '{s}'; using default {DEFAULT}"
                )),
            ),
        },
    }
}

/// Per-measurement wall-clock budget (`FDIAM_TIMEOUT_SECS`, default
/// 120 s; the paper's budget is 2.5 h). The budget is *soft*: it is
/// checked between runs, and a first run longer than the budget marks
/// the measurement as timed out. An unparsable value warns on stderr
/// and falls back to the default instead of being silently ignored.
pub fn timeout_from_env() -> Duration {
    let (budget, warning) = parse_timeout(std::env::var("FDIAM_TIMEOUT_SECS").ok().as_deref());
    if let Some(w) = warning {
        eprintln!("warning: {w}");
    }
    budget
}

fn parse_timeout(raw: Option<&str>) -> (Duration, Option<String>) {
    const DEFAULT_SECS: u64 = 120;
    let fallback = Duration::from_secs(DEFAULT_SECS);
    match raw {
        // Empty string = unset (see `parse_runs`), not a parse error.
        None => (fallback, None),
        Some(s) if s.trim().is_empty() => (fallback, None),
        Some(s) => match s.trim().parse::<u64>() {
            Ok(secs) => (Duration::from_secs(secs), None),
            Err(_) => (
                fallback,
                Some(format!(
                    "FDIAM_TIMEOUT_SECS is not a valid number of seconds: '{s}'; \
                     using default {DEFAULT_SECS}"
                )),
            ),
        },
    }
}

/// A timed measurement: the median runtime and the last result, or a
/// timeout marker.
#[derive(Clone, Debug)]
pub enum Measurement<R> {
    Done { median: Duration, result: R },
    TimedOut,
}

impl<R> Measurement<R> {
    pub fn median(&self) -> Option<Duration> {
        match self {
            Measurement::Done { median, .. } => Some(*median),
            Measurement::TimedOut => None,
        }
    }

    pub fn result(&self) -> Option<&R> {
        match self {
            Measurement::Done { result, .. } => Some(result),
            Measurement::TimedOut => None,
        }
    }
}

/// Runs `f` up to `runs` times within the soft `budget`, returning the
/// median runtime. The first run always executes; if it alone exceeds
/// the budget the measurement is reported as timed out (matching the
/// paper's T/O entries).
pub fn measure<R>(runs: usize, budget: Duration, mut f: impl FnMut() -> R) -> Measurement<R> {
    assert!(runs > 0);
    let start = Instant::now();
    let mut times = Vec::with_capacity(runs);
    let mut last = None;
    for i in 0..runs {
        if i > 0 && start.elapsed() + times[0] > budget {
            break; // keep what we have rather than blow the budget
        }
        let t = Instant::now();
        let r = f();
        times.push(t.elapsed());
        last = Some(r);
        if i == 0 && times[0] > budget {
            return Measurement::TimedOut;
        }
    }
    times.sort_unstable();
    Measurement::Done {
        median: times[times.len() / 2],
        result: last.expect("at least one run"),
    }
}

/// The paper's throughput metric: vertices per second.
pub fn throughput(vertices: usize, time: Duration) -> f64 {
    let s = time.as_secs_f64();
    if s == 0.0 {
        f64::INFINITY
    } else {
        vertices as f64 / s
    }
}

/// Geometric mean of positive values; 0 for an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_median_and_result() {
        let mut calls = 0;
        let m = measure(3, Duration::from_secs(60), || {
            calls += 1;
            calls
        });
        match m {
            Measurement::Done { result, median } => {
                assert_eq!(result, 3);
                assert!(median < Duration::from_secs(1));
            }
            Measurement::TimedOut => panic!("should not time out"),
        }
    }

    #[test]
    fn measure_times_out_on_slow_first_run() {
        let m = measure(3, Duration::from_millis(1), || {
            std::thread::sleep(Duration::from_millis(10));
        });
        assert!(matches!(m, Measurement::TimedOut));
        assert!(m.median().is_none());
    }

    #[test]
    fn measure_stops_early_when_budget_spent() {
        let mut calls = 0;
        let m = measure(100, Duration::from_millis(30), || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(10));
        });
        assert!(matches!(m, Measurement::Done { .. }));
        assert!(calls < 100, "should stop well before 100 runs");
    }

    #[test]
    fn throughput_metric() {
        assert_eq!(throughput(1000, Duration::from_secs(2)), 500.0);
        assert!(throughput(5, Duration::ZERO).is_infinite());
    }

    #[test]
    fn geomean_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0, 9.0]) - 6.0).abs() < 1e-12);
        assert!((geomean(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn env_defaults() {
        assert!(runs_from_env() >= 1);
        assert!(timeout_from_env() >= Duration::from_secs(1));
    }

    #[test]
    fn parse_runs_accepts_valid_and_absent() {
        assert_eq!(parse_runs(None), (3, None));
        assert_eq!(parse_runs(Some("9")), (9, None));
        assert_eq!(parse_runs(Some(" 5 ")), (5, None));
    }

    #[test]
    fn parse_runs_warns_on_garbage() {
        for bad in ["zero", "3.5", "-1"] {
            let (runs, warning) = parse_runs(Some(bad));
            assert_eq!(runs, 3, "fallback for {bad:?}");
            assert!(
                warning.unwrap().contains("FDIAM_RUNS"),
                "warning for {bad:?}"
            );
        }
        let (runs, warning) = parse_runs(Some("0"));
        assert_eq!(runs, 3);
        assert!(warning.unwrap().contains("positive"));
    }

    #[test]
    fn empty_string_means_unset_without_warning() {
        for empty in ["", "  ", "\t"] {
            assert_eq!(parse_runs(Some(empty)), (3, None), "runs for {empty:?}");
            assert_eq!(
                parse_timeout(Some(empty)),
                (Duration::from_secs(120), None),
                "timeout for {empty:?}"
            );
        }
    }

    #[test]
    fn parse_timeout_accepts_valid_and_absent() {
        assert_eq!(parse_timeout(None), (Duration::from_secs(120), None));
        assert_eq!(
            parse_timeout(Some("9000")),
            (Duration::from_secs(9000), None)
        );
        // 0 is a legal (if punishing) soft budget
        assert_eq!(parse_timeout(Some("0")), (Duration::ZERO, None));
    }

    #[test]
    fn parse_timeout_warns_on_garbage() {
        for bad in ["two-hours", "1.5", "-3"] {
            let (budget, warning) = parse_timeout(Some(bad));
            assert_eq!(budget, Duration::from_secs(120), "fallback for {bad:?}");
            assert!(
                warning.unwrap().contains("FDIAM_TIMEOUT_SECS"),
                "warning for {bad:?}"
            );
        }
    }
}
