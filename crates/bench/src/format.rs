//! Plain-text table rendering for the experiment binaries.

/// A simple left-padded text table.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(c);
                line.extend(std::iter::repeat_n(' ', w - c.chars().count()));
                line.push_str(" |");
            }
            line
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration in seconds with 3 decimals, like the paper's
/// Table 2, or "T/O" for a timeout.
pub fn secs(d: Option<std::time::Duration>) -> String {
    match d {
        Some(d) => format!("{:.3}", d.as_secs_f64()),
        None => "T/O".to_string(),
    }
}

/// Formats a throughput value compactly (e.g. `3.1e6`).
pub fn tput(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3e}"),
        None => "T/O".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["graph", "n"]);
        t.row(vec!["a", "10"]);
        t.row(vec!["long-name", "7"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines
            .iter()
            .all(|l| l.chars().count() == lines[0].chars().count()));
        assert!(lines[0].contains("graph"));
        assert!(lines[3].contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Some(Duration::from_millis(1234))), "1.234");
        assert_eq!(secs(None), "T/O");
        assert_eq!(tput(Some(1234.5)), "1.234e3");
        assert_eq!(tput(None), "T/O");
    }
}
