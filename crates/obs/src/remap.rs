//! Vertex-id translation for observers of relabeled runs.
//!
//! When a graph is relabeled at load time (`fdiam_graph::VertexOrder`),
//! the compute kernels — and therefore the driver's event stream —
//! speak *internal* ids. Everything user-facing must stay in original
//! ids, traces included: a `BfsStart { source }` line that names an
//! internal id would be unresolvable against the user's input file.
//! [`RemapIds`] sits between the driver and the real sinks and
//! rewrites the three event variants that carry a vertex id
//! ([`Event::BfsStart`], [`Event::BfsEnd`], [`Event::BoundUpdate`]);
//! every other variant (spans, levels, snapshots, summaries) is
//! id-free and passes through untouched.

use crate::event::Event;
use crate::observer::Observer;

/// Observer adapter translating internal vertex ids back to original
/// ids through `to_original` (`to_original[internal] = original`).
pub struct RemapIds<'a> {
    inner: &'a dyn Observer,
    to_original: &'a [u32],
}

impl<'a> RemapIds<'a> {
    pub fn new(inner: &'a dyn Observer, to_original: &'a [u32]) -> Self {
        Self { inner, to_original }
    }

    #[inline]
    fn original(&self, v: u32) -> u32 {
        // Out-of-range ids pass through unchanged: the driver never
        // emits one, and dropping an event over it would hide more
        // than it fixes.
        self.to_original.get(v as usize).copied().unwrap_or(v)
    }
}

impl Observer for RemapIds<'_> {
    fn event(&self, e: &Event<'_>) {
        match *e {
            Event::BfsStart { source, span } => self.inner.event(&Event::BfsStart {
                source: self.original(source),
                span,
            }),
            Event::BfsEnd {
                source,
                eccentricity,
                visited,
                span,
            } => self.inner.event(&Event::BfsEnd {
                source: self.original(source),
                eccentricity,
                visited,
                span,
            }),
            Event::BoundUpdate { old, new, source } => self.inner.event(&Event::BoundUpdate {
                old,
                new,
                source: self.original(source),
            }),
            ref other => self.inner.event(other),
        }
    }

    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn wants_bfs_detail(&self) -> bool {
        self.inner.wants_bfs_detail()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SpanId;
    use std::sync::Mutex;

    struct Tap(Mutex<Vec<u32>>);
    impl Observer for Tap {
        fn event(&self, e: &Event<'_>) {
            match *e {
                Event::BfsStart { source, .. }
                | Event::BfsEnd { source, .. }
                | Event::BoundUpdate { source, .. } => self.0.lock().unwrap().push(source),
                _ => {}
            }
        }
    }

    #[test]
    fn rewrites_every_id_carrying_variant() {
        let tap = Tap(Mutex::new(Vec::new()));
        let map = [7u32, 5, 3]; // internal 0→7, 1→5, 2→3
        let remap = RemapIds::new(&tap, &map);
        remap.event(&Event::BfsStart {
            source: 0,
            span: SpanId::NONE,
        });
        remap.event(&Event::BfsEnd {
            source: 1,
            eccentricity: 4,
            visited: 3,
            span: SpanId::NONE,
        });
        remap.event(&Event::BoundUpdate {
            old: 0,
            new: 4,
            source: 2,
        });
        remap.event(&Event::BoundUpdate {
            old: 0,
            new: 4,
            source: 99, // out of range: passed through
        });
        assert_eq!(*tap.0.lock().unwrap(), vec![7, 5, 3, 99]);
    }

    #[test]
    fn id_free_events_and_capabilities_pass_through() {
        let tap = Tap(Mutex::new(Vec::new()));
        let map = [1u32, 0];
        let remap = RemapIds::new(&tap, &map);
        remap.event(&Event::Progress {
            active: 10,
            bound: 2,
        });
        assert!(tap.0.lock().unwrap().is_empty());
        assert!(remap.enabled());
        assert_eq!(remap.wants_bfs_detail(), tap.wants_bfs_detail());
    }
}
