//! # fdiam-obs
//!
//! Structured tracing, metrics, and progress instrumentation for the
//! F-Diam stack.
//!
//! The paper's entire evaluation (Tables 3–5, Figures 6–9) is built
//! from internal algorithm telemetry: BFS traversal counts, per-stage
//! removal percentages, per-stage runtime fractions. This crate makes
//! that telemetry a first-class, observable event stream instead of ad
//! hoc counters:
//!
//! * [`Observer`] — the sink trait. Algorithm code emits [`Event`]s;
//!   anything implementing `Observer` can consume them. The
//!   [`NoopObserver`] (see [`noop`]) reports itself as disabled so hot
//!   paths can skip event construction entirely — instrumentation is
//!   zero-cost when nobody is listening.
//! * [`Event`] — one enum covering the whole pipeline: run lifecycle,
//!   per-phase spans (2-sweep, Winnow, Chain, Eliminate, eccentricity
//!   BFS), per-level BFS frontier dynamics, top-down↔bottom-up
//!   direction switches, epoch rollovers, and diameter lower-bound
//!   convergence.
//! * [`RunId`] / [`SpanId`] — correlation ids: a run id is minted at
//!   request admission (or by the driver) and appears in the trace,
//!   the access log, the `/metrics` info label, and the response body;
//!   span ids link phase spans and per-level BFS events to their
//!   traversal.
//! * [`MetricsRegistry`] / [`MetricsObserver`] — named atomic counters,
//!   last-value [`Gauge`]s, and log₂-bucketed duration histograms,
//!   aggregated from the event stream (`fdiam diameter --metrics`).
//!   [`expo`] renders the whole registry in Prometheus 0.0.4 text
//!   exposition and ships the in-tree linter that validates it.
//! * [`ProgressSink`] — rate-limited human progress lines on stderr:
//!   active vertices remaining, current bound, BFS/s.
//! * [`JsonlTraceSink`] — one structured JSON event per line for
//!   offline analysis (`fdiam diameter --trace out.jsonl`); the schema
//!   is documented in DESIGN.md §7.
//! * [`json`] — a minimal dependency-free JSON encoder/parser used by
//!   the trace sink, the bench run records, and the tests that validate
//!   them.
//! * [`RunRegistry`] / [`BoundsSnapshot`] — live-run introspection:
//!   the codes publish certified `[lb, ub]` bounds after every sweep,
//!   and the registry keeps the latest snapshot of every in-flight run
//!   (the substrate of fdiam-serve's `GET /v1/runs`).
//! * [`FlightRecorder`] — the always-on black box: a bounded,
//!   per-thread-sharded ring of recent events with drop-oldest
//!   semantics and per-shard sequence numbers, dumpable after the fact
//!   as fdiam-trace-compatible JSONL; [`register_post_mortem`] hooks it
//!   into the process panic hook so a crash leaves a forensic file.
//! * [`build_info()`] — compile-time provenance (git rev, rustc,
//!   profile) exposed as the `fdiam_build_info` metric and in
//!   `fdiam --version`.
//! * [`CancelToken`] — cooperative cancellation (shared atomic
//!   flag + deadline) polled by the BFS kernels once per level and by
//!   the F-Diam driver between stages; the serving layer and the CLI
//!   timeout are built on it.
//!
//! The crate is deliberately std-only: it sits below every other
//! F-Diam crate in the dependency graph.

pub mod build_info;
pub mod cancel;
pub mod event;
pub mod expo;
pub mod flight;
pub mod ids;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod observer;
pub mod progress;
pub mod registry;
pub mod remap;

pub use build_info::{build_info, BuildInfo};
pub use cancel::CancelToken;
pub use event::{Event, Phase};
pub use expo::PROMETHEUS_CONTENT_TYPE;
pub use flight::{
    register_post_mortem, write_post_mortem, FlightConfig, FlightRecorder, PostMortemGuard,
    ShardStats,
};
pub use ids::{RunId, SpanId};
pub use jsonl::JsonlTraceSink;
pub use metrics::{Counter, DurationHistogram, Gauge, MetricsObserver, MetricsRegistry};
pub use observer::{noop, Fanout, NoopObserver, Observer, PhaseSpan, Tee};
pub use progress::ProgressSink;
pub use registry::{BoundsSnapshot, RunInfo, RunRegistry};
pub use remap::RemapIds;
