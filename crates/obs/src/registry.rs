//! Live-run introspection: the latest certified diameter bounds of
//! every in-flight run.
//!
//! The diameter codes publish a [`BoundsSnapshot`] after every
//! eccentricity sweep (as [`Event::BoundsUpdate`]). A [`RunRegistry`]
//! attached as an [`Observer`] keeps only the *latest* snapshot per
//! run: it registers a run on `run_start`, swaps the snapshot on every
//! `bounds_update`, and deregisters on `run_end`. Cancelled runs never
//! emit `run_end`, so owners of cancellable runs (fdiam-serve's
//! workers) must call [`RunRegistry::deregister`] on the cancel path.
//!
//! Publishing is allocation-free: a snapshot is a `Copy` struct of
//! integers plus a `&'static str` phase label, and swapping it into a
//! registered slot only stores through a pre-allocated `Mutex`. The
//! only allocating operation is registration itself (one map entry and
//! one `String` for the algorithm name per run).

use crate::event::Event;
use crate::ids::RunId;
use crate::observer::Observer;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The certified `[lb, ub]` diameter-bounds state of a run after one
/// eccentricity sweep.
///
/// Invariants maintained by every publisher (F-Diam serial/parallel,
/// bounding eccentricities, ExactSumSweep): across successive
/// snapshots of one run, `lb` is non-decreasing, `ub` is
/// non-increasing, and `lb <= diameter <= ub` holds throughout (for
/// the largest-component diameter the codes report). On termination
/// the final snapshot has `lb == ub == diameter`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundsSnapshot {
    /// Correlation id of the run this snapshot belongs to.
    pub run: RunId,
    /// Stable snake_case label of the publishing stage (e.g.
    /// `"two_sweep"`, `"main_loop"`, `"bounding_ecc"`, `"done"`).
    pub phase: &'static str,
    /// Full BFS traversals completed so far in this run.
    pub bfs_count: u64,
    /// Certified diameter lower bound (largest eccentricity seen).
    pub lb: u32,
    /// Certified diameter upper bound.
    pub ub: u32,
    /// Vertices whose eccentricity is still unresolved.
    pub vertices_remaining: usize,
    /// Wall-clock nanoseconds since the run started.
    pub elapsed_nanos: u64,
}

impl BoundsSnapshot {
    /// Current bounds gap `ub - lb`; 0 means the answer is certified.
    pub fn gap(&self) -> u32 {
        self.ub.saturating_sub(self.lb)
    }
}

/// Static facts recorded when a run registers, plus its live snapshot.
#[derive(Clone, Debug)]
pub struct RunInfo {
    /// Correlation id of the run.
    pub run: RunId,
    /// Algorithm name from `run_start` (e.g. `"fdiam"`).
    pub algorithm: String,
    /// Number of vertices in the input graph.
    pub n: usize,
    /// Number of undirected edges in the input graph.
    pub m: usize,
    /// Latest published snapshot; `None` until the first sweep lands.
    pub latest: Option<BoundsSnapshot>,
}

struct RunSlot {
    algorithm: String,
    n: usize,
    m: usize,
    latest: Mutex<Option<BoundsSnapshot>>,
}

/// Concurrent registry of in-flight runs keyed by [`RunId`].
///
/// Attach it (via [`Observer`]) alongside the metrics observer; it
/// follows the run lifecycle automatically except for cancellation,
/// which requires an explicit [`RunRegistry::deregister`] because a
/// cancelled run never reaches `run_end`.
#[derive(Default)]
pub struct RunRegistry {
    runs: Mutex<BTreeMap<u64, Arc<RunSlot>>>,
}

impl RunRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a run. Idempotent: re-registering an id replaces the
    /// static facts but keeps no stale snapshot (the slot starts
    /// empty).
    pub fn register(&self, run: RunId, algorithm: &str, n: usize, m: usize) {
        let slot = Arc::new(RunSlot {
            algorithm: algorithm.to_string(),
            n,
            m,
            latest: Mutex::new(None),
        });
        self.runs.lock().unwrap().insert(run.0, slot);
    }

    /// Swaps in the latest snapshot for its run. A snapshot for an
    /// unregistered run is dropped silently (the CLI publishes without
    /// a registry attached). Allocation-free for registered runs.
    pub fn publish(&self, snapshot: BoundsSnapshot) {
        let slot = self.runs.lock().unwrap().get(&snapshot.run.0).cloned();
        if let Some(slot) = slot {
            *slot.latest.lock().unwrap() = Some(snapshot);
        }
    }

    /// Removes a run (normal completion or cancellation). Unknown ids
    /// are a no-op so the cancel path can deregister unconditionally.
    pub fn deregister(&self, run: RunId) {
        self.remove(run);
    }

    /// Atomically removes a run and returns its final state — the
    /// fetch-and-deregister that anytime consumers (fdiam-serve's
    /// deadline path) need: the cancelled run's last certified snapshot
    /// goes to exactly one caller and the registry is clean afterwards.
    pub fn remove(&self, run: RunId) -> Option<RunInfo> {
        let slot = self.runs.lock().unwrap().remove(&run.0)?;
        Some(Self::info(run, &slot))
    }

    /// Number of currently registered (in-flight) runs.
    pub fn in_flight(&self) -> usize {
        self.runs.lock().unwrap().len()
    }

    /// The registered run with this id, if still in flight.
    pub fn get(&self, run: RunId) -> Option<RunInfo> {
        let slot = self.runs.lock().unwrap().get(&run.0).cloned()?;
        Some(Self::info(run, &slot))
    }

    /// All in-flight runs, ordered by run id for stable output.
    pub fn list(&self) -> Vec<RunInfo> {
        let slots: Vec<(u64, Arc<RunSlot>)> = self
            .runs
            .lock()
            .unwrap()
            .iter()
            .map(|(id, slot)| (*id, Arc::clone(slot)))
            .collect();
        slots
            .iter()
            .map(|(id, slot)| Self::info(RunId(*id), slot))
            .collect()
    }

    fn info(run: RunId, slot: &RunSlot) -> RunInfo {
        RunInfo {
            run,
            algorithm: slot.algorithm.clone(),
            n: slot.n,
            m: slot.m,
            latest: *slot.latest.lock().unwrap(),
        }
    }
}

impl Observer for RunRegistry {
    fn event(&self, e: &Event<'_>) {
        match *e {
            Event::RunStart {
                algorithm,
                n,
                m,
                run,
                ..
            } => self.register(run, algorithm, n, m),
            Event::BoundsUpdate { snapshot } => self.publish(snapshot),
            Event::RunEnd { run, .. } => self.deregister(run),
            _ => {}
        }
    }

    // The registry only needs run-level lifecycle events.
    fn wants_bfs_detail(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(run: RunId, lb: u32, ub: u32) -> BoundsSnapshot {
        BoundsSnapshot {
            run,
            phase: "main_loop",
            bfs_count: 3,
            lb,
            ub,
            vertices_remaining: 7,
            elapsed_nanos: 1_000,
        }
    }

    #[test]
    fn lifecycle_register_publish_deregister() {
        let reg = RunRegistry::new();
        let run = RunId(0xabc);
        assert_eq!(reg.in_flight(), 0);
        assert!(reg.get(run).is_none());

        reg.register(run, "fdiam", 100, 200);
        assert_eq!(reg.in_flight(), 1);
        let info = reg.get(run).unwrap();
        assert_eq!(info.algorithm, "fdiam");
        assert_eq!((info.n, info.m), (100, 200));
        assert!(info.latest.is_none());

        reg.publish(snap(run, 4, 10));
        reg.publish(snap(run, 6, 8));
        let latest = reg.get(run).unwrap().latest.unwrap();
        assert_eq!((latest.lb, latest.ub), (6, 8));
        assert_eq!(latest.gap(), 2);

        reg.deregister(run);
        assert_eq!(reg.in_flight(), 0);
        assert!(reg.get(run).is_none());
        // Deregistering again (the unconditional cancel path) is fine.
        reg.deregister(run);
    }

    #[test]
    fn remove_returns_the_final_state_exactly_once() {
        let reg = RunRegistry::new();
        let run = RunId(0x7);
        reg.register(run, "fdiam", 9, 12);
        reg.publish(snap(run, 3, 5));

        let info = reg.remove(run).expect("registered run");
        assert_eq!(info.algorithm, "fdiam");
        assert_eq!((info.n, info.m), (9, 12));
        assert_eq!(info.latest.unwrap().gap(), 2);
        // Gone: the second reaper gets nothing, in_flight is clean.
        assert!(reg.remove(run).is_none());
        assert_eq!(reg.in_flight(), 0);
    }

    #[test]
    fn publish_for_unregistered_run_is_dropped() {
        let reg = RunRegistry::new();
        reg.publish(snap(RunId(1), 1, 2));
        assert_eq!(reg.in_flight(), 0);
        assert!(reg.list().is_empty());
    }

    #[test]
    fn observer_follows_run_lifecycle() {
        let reg = RunRegistry::new();
        let run = RunId(0x42);
        reg.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 10,
            m: 9,
            run,
        });
        assert_eq!(reg.in_flight(), 1);
        reg.event(&Event::BoundsUpdate {
            snapshot: snap(run, 2, 9),
        });
        assert_eq!(reg.get(run).unwrap().latest.unwrap().gap(), 7);
        reg.event(&Event::RunEnd {
            diameter: 5,
            connected: true,
            nanos: 10,
            run,
        });
        assert_eq!(reg.in_flight(), 0);
    }

    #[test]
    fn list_is_ordered_and_isolated_per_run() {
        let reg = RunRegistry::new();
        for id in [3u64, 1, 2] {
            reg.register(RunId(id), "fdiam", 10, 10);
        }
        reg.publish(snap(RunId(2), 1, 4));
        let runs = reg.list();
        assert_eq!(
            runs.iter().map(|r| r.run.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(runs[0].latest.is_none());
        assert_eq!(runs[1].latest.unwrap().lb, 1);
        assert!(runs[2].latest.is_none());
    }

    #[test]
    fn gap_saturates() {
        // An inverted pair would be a publisher bug; the gap still
        // must not wrap around.
        assert_eq!(snap(RunId(1), 5, 3).gap(), 0);
        assert_eq!(snap(RunId(1), 3, 3).gap(), 0);
    }
}
