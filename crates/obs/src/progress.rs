//! Human progress lines, rate-limited.

use crate::event::Event;
use crate::observer::Observer;
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Observer printing one-line progress updates to a writer (normally
/// stderr): active vertices remaining, current lower bound, and the
/// eccentricity-BFS rate.
///
/// Lines are emitted at most once per `min_interval` (long diameter
/// runs perform millions of iterations; a terminal is not a 10 MHz
/// device), except for the final `run_end` summary which always
/// prints.
pub struct ProgressSink<W: Write + Send> {
    state: Mutex<State<W>>,
    min_interval: Duration,
}

struct State<W> {
    out: W,
    started: Instant,
    last_emit: Option<Instant>,
    n: usize,
    bfs_done: u64,
    bound: u32,
    active: usize,
}

impl<W: Write + Send> ProgressSink<W> {
    pub fn new(out: W, min_interval: Duration) -> Self {
        Self {
            state: Mutex::new(State {
                out,
                started: Instant::now(),
                last_emit: None,
                n: 0,
                bfs_done: 0,
                bound: 0,
                active: 0,
            }),
            min_interval,
        }
    }

    /// Consumes the sink and returns the writer (test access).
    pub fn into_inner(self) -> W {
        self.state.into_inner().unwrap().out
    }
}

impl ProgressSink<std::io::Stderr> {
    /// Progress on stderr, throttled to 5 lines/second.
    pub fn stderr() -> Self {
        Self::new(std::io::stderr(), Duration::from_millis(200))
    }
}

impl<W: Write + Send> ProgressSink<W> {
    fn emit(s: &mut State<W>, force: bool, min_interval: Duration) {
        let now = Instant::now();
        if !force {
            if let Some(last) = s.last_emit {
                if now.duration_since(last) < min_interval {
                    return;
                }
            }
        }
        s.last_emit = Some(now);
        let elapsed = now.duration_since(s.started).as_secs_f64();
        let rate = if elapsed > 0.0 {
            s.bfs_done as f64 / elapsed
        } else {
            0.0
        };
        let removed_pct = if s.n > 0 {
            100.0 * (s.n - s.active.min(s.n)) as f64 / s.n as f64
        } else {
            0.0
        };
        let _ = writeln!(
            s.out,
            "[fdiam] bfs {:>6} | bound {:>6} | active {:>9}/{} ({removed_pct:.1}% removed) | {rate:.1} bfs/s",
            s.bfs_done, s.bound, s.active, s.n
        );
    }
}

impl<W: Write + Send> Observer for ProgressSink<W> {
    fn event(&self, e: &Event<'_>) {
        let mut s = self.state.lock().unwrap();
        match *e {
            Event::RunStart { n, .. } => {
                s.n = n;
                s.active = n;
                s.started = Instant::now();
            }
            Event::BfsEnd { .. } => s.bfs_done += 1,
            Event::BoundUpdate { new, .. } => s.bound = new,
            Event::Progress { active, bound } => {
                s.active = active;
                s.bound = bound;
                Self::emit(&mut s, false, self.min_interval);
            }
            Event::RunEnd {
                diameter, nanos, ..
            } => {
                s.active = 0;
                s.bound = diameter;
                Self::emit(&mut s, true, self.min_interval);
                let bfs_done = s.bfs_done;
                let _ = writeln!(
                    s.out,
                    "[fdiam] done: diameter {} after {} BFS in {:.3}s",
                    diameter,
                    bfs_done,
                    nanos as f64 / 1e9
                );
                let _ = s.out.flush();
            }
            _ => {}
        }
    }

    /// Progress does not need per-level BFS telemetry.
    fn wants_bfs_detail(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(sink: ProgressSink<Vec<u8>>) -> Vec<String> {
        String::from_utf8(sink.into_inner())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn unthrottled_sink_reports_each_progress_event() {
        use crate::ids::{RunId, SpanId};
        let sink = ProgressSink::new(Vec::new(), Duration::ZERO);
        sink.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 100,
            m: 200,
            run: RunId(1),
        });
        sink.event(&Event::BfsEnd {
            source: 0,
            eccentricity: 4,
            visited: 100,
            span: SpanId::NONE,
        });
        sink.event(&Event::BoundUpdate {
            old: 0,
            new: 4,
            source: 0,
        });
        sink.event(&Event::Progress {
            active: 40,
            bound: 4,
        });
        sink.event(&Event::RunEnd {
            diameter: 5,
            connected: true,
            nanos: 2_000_000_000,
            run: RunId(1),
        });
        let out = lines(sink);
        assert_eq!(out.len(), 3, "{out:?}"); // progress + final + done
        assert!(out[0].contains("bound      4"), "{}", out[0]);
        assert!(out[0].contains("active        40/100"), "{}", out[0]);
        assert!(out[0].contains("(60.0% removed)"), "{}", out[0]);
        assert!(out[2].contains("diameter 5 after 1 BFS"), "{}", out[2]);
    }

    #[test]
    fn throttling_suppresses_rapid_updates() {
        use crate::ids::RunId;
        let sink = ProgressSink::new(Vec::new(), Duration::from_secs(3600));
        sink.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 10,
            m: 9,
            run: RunId(1),
        });
        for i in 0..50 {
            sink.event(&Event::Progress {
                active: 10 - (i % 10) as usize,
                bound: i,
            });
        }
        sink.event(&Event::RunEnd {
            diameter: 9,
            connected: true,
            nanos: 1,
            run: RunId(1),
        });
        let out = lines(sink);
        // first progress emits (no last_emit), the rest throttle, the
        // final summary always emits (2 lines).
        assert_eq!(out.len(), 3, "{out:?}");
    }

    #[test]
    fn progress_does_not_want_bfs_detail() {
        let sink = ProgressSink::new(Vec::new(), Duration::ZERO);
        assert!(sink.enabled());
        assert!(!sink.wants_bfs_detail());
    }
}
