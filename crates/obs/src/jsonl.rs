//! Structured trace output: one JSON object per line.

use crate::event::Event;
use crate::json::JsonObject;
use crate::observer::Observer;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Observer writing every event as one JSON line (JSON Lines format).
///
/// Each line carries a stable `type` field (see [`Event::name`]) and a
/// `ts_us` microsecond timestamp relative to sink creation, followed by
/// the event's own fields. The schema is documented in DESIGN.md §7.
pub struct JsonlTraceSink<W: Write + Send> {
    out: Mutex<W>,
    start: Instant,
}

impl<W: Write + Send> JsonlTraceSink<W> {
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
            start: Instant::now(),
        }
    }

    /// Consumes the sink and returns the writer (test access).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl JsonlTraceSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

/// Encodes one event to a single JSON object (no newline).
pub fn encode_event(e: &Event<'_>, ts_us: u64) -> String {
    let o = JsonObject::new().str("type", e.name()).u64("ts_us", ts_us);
    match *e {
        Event::RunStart { algorithm, n, m } => o
            .str("algorithm", algorithm)
            .usize("n", n)
            .usize("m", m)
            .finish(),
        Event::PhaseStart { phase } => o.str("phase", phase.name()).finish(),
        Event::PhaseEnd { phase, nanos } => {
            o.str("phase", phase.name()).u64("nanos", nanos).finish()
        }
        Event::BfsStart { source } => o.u64("source", source as u64).finish(),
        Event::BfsLevel {
            level,
            frontier,
            edges_scanned,
            bottom_up,
        } => o
            .u64("level", level as u64)
            .usize("frontier", frontier)
            .u64("edges_scanned", edges_scanned)
            .bool("bottom_up", bottom_up)
            .finish(),
        Event::DirectionSwitch { level, bottom_up } => o
            .u64("level", level as u64)
            .bool("bottom_up", bottom_up)
            .finish(),
        Event::EpochRollover { rollovers } => o.u64("rollovers", rollovers).finish(),
        Event::BfsEnd {
            source,
            eccentricity,
            visited,
        } => o
            .u64("source", source as u64)
            .u64("eccentricity", eccentricity as u64)
            .usize("visited", visited)
            .finish(),
        Event::BoundUpdate { old, new, source } => o
            .u64("old", old as u64)
            .u64("new", new as u64)
            .u64("source", source as u64)
            .finish(),
        Event::WinnowGrown { radius } => o.u64("radius", radius as u64).finish(),
        Event::EliminateRun { removed, extension } => o
            .usize("removed", removed)
            .bool("extension", extension)
            .finish(),
        Event::ChainsProcessed { count } => o.usize("count", count).finish(),
        Event::Progress { active, bound } => o
            .usize("active", active)
            .u64("bound", bound as u64)
            .finish(),
        Event::RunEnd {
            diameter,
            connected,
            nanos,
        } => o
            .u64("diameter", diameter as u64)
            .bool("connected", connected)
            .u64("nanos", nanos)
            .finish(),
    }
}

impl<W: Write + Send> Observer for JsonlTraceSink<W> {
    fn event(&self, e: &Event<'_>) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let line = encode_event(e, ts_us);
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
        // Flush at the run boundary so the trace is complete on disk
        // even if the process is killed before the writer drops.
        if matches!(e, Event::RunEnd { .. }) {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json::{parse, JsonValue};

    fn trace_of(events: &[Event<'_>]) -> Vec<JsonValue> {
        let sink = JsonlTraceSink::new(Vec::new());
        for e in events {
            sink.event(e);
        }
        let buf = sink.into_inner();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| parse(l).expect("trace line must be valid JSON"))
            .collect()
    }

    #[test]
    fn every_event_variant_encodes_to_valid_json() {
        let events = [
            Event::RunStart {
                algorithm: "fdiam",
                n: 10,
                m: 9,
            },
            Event::PhaseStart {
                phase: Phase::TwoSweep,
            },
            Event::BfsStart { source: 7 },
            Event::BfsLevel {
                level: 1,
                frontier: 3,
                edges_scanned: 12,
                bottom_up: false,
            },
            Event::DirectionSwitch {
                level: 2,
                bottom_up: true,
            },
            Event::EpochRollover { rollovers: 1 },
            Event::BfsEnd {
                source: 7,
                eccentricity: 4,
                visited: 10,
            },
            Event::PhaseEnd {
                phase: Phase::TwoSweep,
                nanos: 1234,
            },
            Event::BoundUpdate {
                old: 3,
                new: 4,
                source: 7,
            },
            Event::WinnowGrown { radius: 2 },
            Event::EliminateRun {
                removed: 5,
                extension: true,
            },
            Event::ChainsProcessed { count: 2 },
            Event::Progress {
                active: 3,
                bound: 4,
            },
            Event::RunEnd {
                diameter: 4,
                connected: true,
                nanos: 9999,
            },
        ];
        let lines = trace_of(&events);
        assert_eq!(lines.len(), events.len());
        for (line, e) in lines.iter().zip(&events) {
            assert_eq!(line.get("type").unwrap().as_str(), Some(e.name()));
            assert!(line.get("ts_us").unwrap().as_u64().is_some());
        }
        // Spot-check field fidelity.
        assert_eq!(lines[0].get("n").unwrap().as_u64(), Some(10));
        assert_eq!(lines[1].get("phase").unwrap().as_str(), Some("two_sweep"));
        assert_eq!(lines[3].get("edges_scanned").unwrap().as_u64(), Some(12));
        assert_eq!(lines[4].get("bottom_up").unwrap().as_bool(), Some(true));
        assert_eq!(lines[7].get("nanos").unwrap().as_u64(), Some(1234));
        assert_eq!(lines[10].get("removed").unwrap().as_u64(), Some(5));
        assert_eq!(lines[13].get("diameter").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let events = [
            Event::BfsStart { source: 0 },
            Event::BfsEnd {
                source: 0,
                eccentricity: 1,
                visited: 2,
            },
        ];
        let lines = trace_of(&events);
        let a = lines[0].get("ts_us").unwrap().as_u64().unwrap();
        let b = lines[1].get("ts_us").unwrap().as_u64().unwrap();
        assert!(b >= a);
    }
}
