//! Structured trace output: one JSON object per line.

use crate::event::Event;
use crate::json::JsonObject;
use crate::observer::Observer;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Observer writing every event as one JSON line (JSON Lines format).
///
/// Each line carries a stable `type` field (see [`Event::name`]) and a
/// `ts_us` microsecond timestamp relative to sink creation, followed by
/// the event's own fields. The schema is documented in DESIGN.md §7.
pub struct JsonlTraceSink<W: Write + Send> {
    out: Mutex<W>,
    start: Instant,
}

impl<W: Write + Send> JsonlTraceSink<W> {
    pub fn new(out: W) -> Self {
        Self {
            out: Mutex::new(out),
            start: Instant::now(),
        }
    }

    /// Consumes the sink and returns the writer (test access).
    pub fn into_inner(self) -> W {
        self.out.into_inner().unwrap()
    }
}

impl JsonlTraceSink<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

/// Encodes one event to a single JSON object (no newline).
///
/// Run ids are encoded as 16-hex-digit strings (`"run"`); span ids as
/// plain numbers (`"span"`, `"parent"`), with 0 meaning "no span".
pub fn encode_event(e: &Event<'_>, ts_us: u64) -> String {
    let o = JsonObject::new().str("type", e.name()).u64("ts_us", ts_us);
    match *e {
        Event::RunStart {
            algorithm,
            n,
            m,
            run,
        } => o
            .str("algorithm", algorithm)
            .usize("n", n)
            .usize("m", m)
            .str("run", &run.to_string())
            .finish(),
        Event::PhaseStart {
            phase,
            span,
            parent,
        } => o
            .str("phase", phase.name())
            .u64("span", span.0)
            .u64("parent", parent.0)
            .finish(),
        Event::PhaseEnd { phase, nanos, span } => o
            .str("phase", phase.name())
            .u64("nanos", nanos)
            .u64("span", span.0)
            .finish(),
        Event::BfsStart { source, span } => {
            o.u64("source", source as u64).u64("span", span.0).finish()
        }
        Event::BfsLevel {
            level,
            frontier,
            edges_scanned,
            bottom_up,
            span,
        } => o
            .u64("level", level as u64)
            .usize("frontier", frontier)
            .u64("edges_scanned", edges_scanned)
            .bool("bottom_up", bottom_up)
            .u64("span", span.0)
            .finish(),
        Event::DirectionSwitch {
            level,
            bottom_up,
            span,
        } => o
            .u64("level", level as u64)
            .bool("bottom_up", bottom_up)
            .u64("span", span.0)
            .finish(),
        Event::EpochRollover { rollovers } => o.u64("rollovers", rollovers).finish(),
        Event::BfsEnd {
            source,
            eccentricity,
            visited,
            span,
        } => o
            .u64("source", source as u64)
            .u64("eccentricity", eccentricity as u64)
            .usize("visited", visited)
            .u64("span", span.0)
            .finish(),
        Event::BoundUpdate { old, new, source } => o
            .u64("old", old as u64)
            .u64("new", new as u64)
            .u64("source", source as u64)
            .finish(),
        Event::BoundsUpdate { snapshot } => o
            .str("run", &snapshot.run.to_string())
            .str("phase", snapshot.phase)
            .u64("bfs_count", snapshot.bfs_count)
            .u64("lb", snapshot.lb as u64)
            .u64("ub", snapshot.ub as u64)
            .usize("vertices_remaining", snapshot.vertices_remaining)
            .u64("elapsed_nanos", snapshot.elapsed_nanos)
            .finish(),
        Event::WinnowGrown { radius } => o.u64("radius", radius as u64).finish(),
        Event::EliminateRun { removed, extension } => o
            .usize("removed", removed)
            .bool("extension", extension)
            .finish(),
        Event::ChainsProcessed { count } => o.usize("count", count).finish(),
        Event::Progress { active, bound } => o
            .usize("active", active)
            .u64("bound", bound as u64)
            .finish(),
        Event::WorkerLoad {
            workers,
            total_edges,
            max_busy_nanos,
            mean_busy_nanos,
            imbalance,
        } => o
            .usize("workers", workers)
            .u64("total_edges", total_edges)
            .u64("max_busy_nanos", max_busy_nanos)
            .u64("mean_busy_nanos", mean_busy_nanos)
            .f64("imbalance", imbalance)
            .finish(),
        Event::RemovalSummary {
            winnow,
            eliminate,
            chain,
            degree0,
            computed,
        } => o
            .usize("winnow", winnow)
            .usize("eliminate", eliminate)
            .usize("chain", chain)
            .usize("degree0", degree0)
            .usize("computed", computed)
            .finish(),
        Event::RunEnd {
            diameter,
            connected,
            nanos,
            run,
        } => o
            .u64("diameter", diameter as u64)
            .bool("connected", connected)
            .u64("nanos", nanos)
            .str("run", &run.to_string())
            .finish(),
    }
}

impl<W: Write + Send> Observer for JsonlTraceSink<W> {
    fn event(&self, e: &Event<'_>) {
        let ts_us = self.start.elapsed().as_micros() as u64;
        let line = encode_event(e, ts_us);
        let mut out = self.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
        // Flush at the run boundary so the trace is complete on disk
        // even if the process is killed before the writer drops.
        if matches!(e, Event::RunEnd { .. }) {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::ids::{RunId, SpanId};
    use crate::json::{parse, JsonValue};

    fn trace_of(events: &[Event<'_>]) -> Vec<JsonValue> {
        let sink = JsonlTraceSink::new(Vec::new());
        for e in events {
            sink.event(e);
        }
        let buf = sink.into_inner();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| parse(l).expect("trace line must be valid JSON"))
            .collect()
    }

    #[test]
    fn every_event_variant_encodes_to_valid_json() {
        let run = RunId(0x00ab_cdef_0123_4567);
        let events = [
            Event::RunStart {
                algorithm: "fdiam",
                n: 10,
                m: 9,
                run,
            },
            Event::PhaseStart {
                phase: Phase::TwoSweep,
                span: SpanId(5),
                parent: SpanId::NONE,
            },
            Event::BfsStart {
                source: 7,
                span: SpanId(6),
            },
            Event::BfsLevel {
                level: 1,
                frontier: 3,
                edges_scanned: 12,
                bottom_up: false,
                span: SpanId(6),
            },
            Event::DirectionSwitch {
                level: 2,
                bottom_up: true,
                span: SpanId(6),
            },
            Event::EpochRollover { rollovers: 1 },
            Event::BfsEnd {
                source: 7,
                eccentricity: 4,
                visited: 10,
                span: SpanId(6),
            },
            Event::PhaseEnd {
                phase: Phase::TwoSweep,
                nanos: 1234,
                span: SpanId(5),
            },
            Event::BoundUpdate {
                old: 3,
                new: 4,
                source: 7,
            },
            Event::BoundsUpdate {
                snapshot: crate::registry::BoundsSnapshot {
                    run,
                    phase: "main_loop",
                    bfs_count: 3,
                    lb: 4,
                    ub: 8,
                    vertices_remaining: 6,
                    elapsed_nanos: 2500,
                },
            },
            Event::WinnowGrown { radius: 2 },
            Event::EliminateRun {
                removed: 5,
                extension: true,
            },
            Event::ChainsProcessed { count: 2 },
            Event::Progress {
                active: 3,
                bound: 4,
            },
            Event::WorkerLoad {
                workers: 4,
                total_edges: 100,
                max_busy_nanos: 40,
                mean_busy_nanos: 25,
                imbalance: 1.6,
            },
            Event::RemovalSummary {
                winnow: 3,
                eliminate: 4,
                chain: 2,
                degree0: 0,
                computed: 1,
            },
            Event::RunEnd {
                diameter: 4,
                connected: true,
                nanos: 9999,
                run,
            },
        ];
        let lines = trace_of(&events);
        assert_eq!(lines.len(), events.len());
        for (line, e) in lines.iter().zip(&events) {
            assert_eq!(line.get("type").unwrap().as_str(), Some(e.name()));
            assert!(line.get("ts_us").unwrap().as_u64().is_some());
        }
        // Spot-check field fidelity.
        assert_eq!(lines[0].get("n").unwrap().as_u64(), Some(10));
        assert_eq!(
            lines[0].get("run").unwrap().as_str(),
            Some("00abcdef01234567"),
            "run ids render as 16 fixed-width hex digits"
        );
        assert_eq!(lines[1].get("phase").unwrap().as_str(), Some("two_sweep"));
        assert_eq!(lines[1].get("span").unwrap().as_u64(), Some(5));
        assert_eq!(lines[1].get("parent").unwrap().as_u64(), Some(0));
        assert_eq!(lines[3].get("edges_scanned").unwrap().as_u64(), Some(12));
        assert_eq!(lines[3].get("span").unwrap().as_u64(), Some(6));
        assert_eq!(lines[4].get("bottom_up").unwrap().as_bool(), Some(true));
        assert_eq!(lines[7].get("nanos").unwrap().as_u64(), Some(1234));
        assert_eq!(
            lines[9].get("type").unwrap().as_str(),
            Some("bounds_update")
        );
        assert_eq!(
            lines[9].get("run").unwrap().as_str(),
            lines[0].get("run").unwrap().as_str(),
            "bounds snapshots carry the run id of their run"
        );
        assert_eq!(lines[9].get("phase").unwrap().as_str(), Some("main_loop"));
        assert_eq!(lines[9].get("lb").unwrap().as_u64(), Some(4));
        assert_eq!(lines[9].get("ub").unwrap().as_u64(), Some(8));
        assert_eq!(lines[9].get("bfs_count").unwrap().as_u64(), Some(3));
        assert_eq!(
            lines[9].get("vertices_remaining").unwrap().as_u64(),
            Some(6)
        );
        assert_eq!(lines[11].get("removed").unwrap().as_u64(), Some(5));
        assert_eq!(lines[14].get("imbalance").unwrap().as_f64(), Some(1.6));
        assert_eq!(lines[15].get("eliminate").unwrap().as_u64(), Some(4));
        assert_eq!(lines[16].get("diameter").unwrap().as_u64(), Some(4));
        assert_eq!(
            lines[16].get("run").unwrap().as_str(),
            lines[0].get("run").unwrap().as_str(),
            "run_start and run_end carry the same run id"
        );
    }

    #[test]
    fn timestamps_are_monotonic() {
        let events = [
            Event::BfsStart {
                source: 0,
                span: SpanId::NONE,
            },
            Event::BfsEnd {
                source: 0,
                eccentricity: 1,
                visited: 2,
                span: SpanId::NONE,
            },
        ];
        let lines = trace_of(&events);
        let a = lines[0].get("ts_us").unwrap().as_u64().unwrap();
        let b = lines[1].get("ts_us").unwrap().as_u64().unwrap();
        assert!(b >= a);
    }
}
