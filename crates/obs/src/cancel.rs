//! Cooperative cancellation: a shared atomic flag + deadline.
//!
//! A [`CancelToken`] is the one cancellation primitive of the whole
//! stack. It is cloned freely (clones share state), armed with an
//! optional deadline, and *polled* — never signalled preemptively — at
//! natural safepoints: the BFS kernels check it once per level, the
//! F-Diam driver between stages, the serving layer between queued
//! requests. Checking is two relaxed atomic loads plus (only while a
//! deadline is armed and not yet known-expired) one monotonic clock
//! read, cheap enough for per-level granularity but deliberately not
//! per-vertex.
//!
//! Once observed as cancelled a token stays cancelled: deadline expiry
//! latches the flag so later checks are pure atomic loads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `deadline_nanos` value meaning "no deadline armed".
const NO_DEADLINE: u64 = u64::MAX;

#[derive(Debug)]
struct Inner {
    /// Latched cancellation flag (explicit [`CancelToken::cancel`] or a
    /// deadline observed as expired).
    cancelled: AtomicBool,
    /// Deadline as nanoseconds since `anchor`; [`NO_DEADLINE`] = none.
    deadline_nanos: AtomicU64,
    /// Monotonic time origin for `deadline_nanos`.
    anchor: Instant,
}

/// A cloneable handle to shared cancellation state.
///
/// ```
/// use fdiam_obs::CancelToken;
/// use std::time::Duration;
///
/// let t = CancelToken::new();
/// assert!(!t.is_cancelled());
/// let worker = t.clone();
/// t.cancel();
/// assert!(worker.is_cancelled());
///
/// let t = CancelToken::with_deadline(Duration::ZERO);
/// assert!(t.is_cancelled(), "already-expired deadline");
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken(Arc<Inner>);

impl CancelToken {
    /// A token with no deadline; cancels only via [`Self::cancel`].
    pub fn new() -> Self {
        CancelToken(Arc::new(Inner {
            cancelled: AtomicBool::new(false),
            deadline_nanos: AtomicU64::new(NO_DEADLINE),
            anchor: Instant::now(),
        }))
    }

    /// A token that cancels itself `budget` from now.
    pub fn with_deadline(budget: Duration) -> Self {
        let t = Self::new();
        t.set_deadline(budget);
        t
    }

    /// Arms (or re-arms) the deadline to `budget` from now. A token
    /// whose deadline already fired stays cancelled.
    pub fn set_deadline(&self, budget: Duration) {
        let nanos = self
            .0
            .anchor
            .elapsed()
            .saturating_add(budget)
            .as_nanos()
            .min(NO_DEADLINE as u128 - 1) as u64;
        self.0.deadline_nanos.store(nanos, Ordering::Relaxed);
    }

    /// Requests cancellation. Idempotent; all clones observe it.
    pub fn cancel(&self) {
        self.0.cancelled.store(true, Ordering::Release);
    }

    /// True once cancellation was requested or the deadline passed.
    /// This is the safepoint check; expiry latches the flag.
    pub fn is_cancelled(&self) -> bool {
        if self.0.cancelled.load(Ordering::Acquire) {
            return true;
        }
        let deadline = self.0.deadline_nanos.load(Ordering::Relaxed);
        if deadline != NO_DEADLINE && self.0.anchor.elapsed().as_nanos() as u64 >= deadline {
            self.cancel();
            return true;
        }
        false
    }

    /// Time left until the armed deadline; `None` when no deadline is
    /// armed, `Some(ZERO)` once expired or cancelled.
    pub fn remaining(&self) -> Option<Duration> {
        let deadline = self.0.deadline_nanos.load(Ordering::Relaxed);
        if deadline == NO_DEADLINE {
            return if self.0.cancelled.load(Ordering::Acquire) {
                Some(Duration::ZERO)
            } else {
                None
            };
        }
        if self.0.cancelled.load(Ordering::Acquire) {
            return Some(Duration::ZERO);
        }
        Some(Duration::from_nanos(deadline).saturating_sub(self.0.anchor.elapsed()))
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.remaining(), None);
    }

    #[test]
    fn explicit_cancel_is_shared_and_latched() {
        let t = CancelToken::new();
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled());
        assert!(clone.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn zero_deadline_is_born_expired() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn future_deadline_counts_down() {
        let t = CancelToken::with_deadline(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        let left = t.remaining().unwrap();
        assert!(left > Duration::from_secs(3500) && left <= Duration::from_secs(3600));
    }

    #[test]
    fn short_deadline_expires() {
        let t = CancelToken::with_deadline(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn expiry_observed_across_clones() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        let clone = t.clone();
        std::thread::sleep(Duration::from_millis(10));
        // The clone's check latches the shared flag...
        assert!(clone.is_cancelled());
        // ...which the original sees without re-reading the clock.
        assert!(t.is_cancelled());
    }

    #[test]
    fn rearming_extends_a_live_deadline() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        t.set_deadline(Duration::from_secs(3600));
        std::thread::sleep(Duration::from_millis(5));
        assert!(!t.is_cancelled());
    }
}
