//! Minimal dependency-free JSON support.
//!
//! The workspace deliberately avoids serde for its telemetry (fdiam-obs
//! must stay at the bottom of the dependency graph), so this module
//! provides the two halves the observability layer needs:
//!
//! * [`JsonObject`] — an append-only encoder for one flat JSON object,
//!   used by [`crate::JsonlTraceSink`] and the bench run records.
//! * [`parse`] — a small recursive-descent parser producing
//!   [`JsonValue`], used by tests (and offline tooling) to validate
//!   that emitted lines are well-formed and to read fields back.

use std::fmt::Write as _;

/// Append-only encoder for a single JSON object.
#[derive(Clone, Debug)]
pub struct JsonObject {
    buf: String,
    empty: bool,
}

impl JsonObject {
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.buf.push(',');
        }
        self.empty = false;
        self.buf.push('"');
        escape_into(&mut self.buf, key);
        self.buf.push_str("\":");
    }

    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    pub fn usize(self, key: &str, value: usize) -> Self {
        self.u64(key, value as u64)
    }

    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            // JSON has no Infinity/NaN; null is the conventional stand-in.
            self.buf.push_str("null");
        }
        self
    }

    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Inserts a pre-encoded JSON value (array or object) verbatim.
    pub fn raw(mut self, key: &str, encoded_json: &str) -> Self {
        self.key(key);
        self.buf.push_str(encoded_json);
        self
    }

    /// Closes the object and returns the encoded string (no newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

fn escape_into(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value; rejects trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our
                            // own traces; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrip() {
        let line = JsonObject::new()
            .str("type", "bfs_level")
            .u64("level", 3)
            .usize("frontier", 17)
            .bool("bottom_up", false)
            .f64("frac", 0.25)
            .finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("bfs_level"));
        assert_eq!(v.get("level").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("frontier").unwrap().as_u64(), Some(17));
        assert_eq!(v.get("bottom_up").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("frac").unwrap().as_f64(), Some(0.25));
    }

    #[test]
    fn escaping_survives_roundtrip() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = JsonObject::new().str("s", nasty).finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = JsonObject::new().f64("x", f64::INFINITY).finish();
        assert_eq!(parse(&line).unwrap().get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn raw_embeds_arrays() {
        let line = JsonObject::new().raw("xs", "[1,2,3]").finish();
        let v = parse(&line).unwrap();
        match v.get("xs") {
            Some(JsonValue::Array(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parses_nested_and_rejects_garbage() {
        let v = parse(r#"{"a":[{"b":null},true,-1.5e2]}"#).unwrap();
        let arr = match v.get("a") {
            Some(JsonValue::Array(items)) => items,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0].get("b"), Some(&JsonValue::Null));
        assert_eq!(arr[1].as_bool(), Some(true));
        assert_eq!(arr[2].as_f64(), Some(-150.0));

        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(parse("{}").unwrap(), JsonValue::Object(vec![]));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Array(vec![]));
    }

    #[test]
    fn unicode_escape_and_utf8_passthrough() {
        // First é arrives as a JSON \\u escape (the raw string keeps
        // the backslash literal for the parser); second é is raw UTF-8.
        let v = parse(r#"{"s":"A\u00e9é"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("Aéé"));
    }
}
