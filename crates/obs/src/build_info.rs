//! Build provenance baked in at compile time (see `build.rs`): ties
//! metrics expositions (`fdiam_build_info`), `fdiam --version` output,
//! flight dumps, and panic post-mortems to one specific binary.

/// Compile-time facts about this binary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildInfo {
    /// Workspace package version (`CARGO_PKG_VERSION`).
    pub version: &'static str,
    /// Short git revision of the build tree, or `"unknown"`.
    pub rev: &'static str,
    /// `rustc --version` of the compiler used, or `"unknown"`.
    pub rustc: &'static str,
    /// Cargo profile (`debug` / `release`), or `"unknown"`.
    pub profile: &'static str,
}

/// The build provenance of this compilation of the workspace.
pub fn build_info() -> BuildInfo {
    BuildInfo {
        version: env!("CARGO_PKG_VERSION"),
        rev: env!("FDIAM_BUILD_REV"),
        rustc: env!("FDIAM_RUSTC_VERSION"),
        profile: env!("FDIAM_BUILD_PROFILE"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_info_fields_are_nonempty() {
        let bi = build_info();
        assert!(!bi.version.is_empty());
        assert!(!bi.rev.is_empty());
        assert!(!bi.rustc.is_empty());
        assert!(!bi.profile.is_empty());
        // The probes either produced something real or the sentinel.
        assert!(bi.rustc == "unknown" || bi.rustc.contains("rustc"));
    }
}
