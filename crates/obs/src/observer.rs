//! The [`Observer`] trait and its combinators.

use crate::event::{Event, Phase};
use crate::ids::SpanId;
use std::cell::RefCell;
use std::time::Instant;

/// A sink for [`Event`]s emitted by the F-Diam stack.
///
/// Implementations must be cheap and thread-safe: parallel BFS levels
/// and concurrent eccentricity batches emit from rayon worker threads.
pub trait Observer: Sync {
    /// Consumes one event.
    fn event(&self, e: &Event<'_>);

    /// `false` when every event would be discarded unseen. Emitters may
    /// (but need not) skip constructing events when disabled.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether per-level BFS telemetry (frontier sizes, edge-scan
    /// counts, direction switches) is wanted. Computing those costs
    /// O(frontier) extra work per level, so the BFS kernels consult
    /// this once per traversal and fall back to the uninstrumented
    /// expansion paths when it is `false`.
    fn wants_bfs_detail(&self) -> bool {
        self.enabled()
    }
}

/// The disabled observer: discards everything and reports
/// [`Observer::enabled`] `false` so emitters skip event construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline]
    fn event(&self, _: &Event<'_>) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// The canonical disabled observer.
pub fn noop() -> &'static NoopObserver {
    static NOOP: NoopObserver = NoopObserver;
    &NOOP
}

/// Duplicates every event to two observers. Used by the F-Diam driver
/// to combine its internal statistics collector with a caller-supplied
/// observer without allocation.
pub struct Tee<'a>(pub &'a dyn Observer, pub &'a dyn Observer);

impl Observer for Tee<'_> {
    #[inline]
    fn event(&self, e: &Event<'_>) {
        self.0.event(e);
        self.1.event(e);
    }

    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    fn wants_bfs_detail(&self) -> bool {
        self.0.wants_bfs_detail() || self.1.wants_bfs_detail()
    }
}

/// Duplicates every event to a dynamic set of observers (CLI wiring:
/// any subset of progress/trace/metrics sinks may be active).
#[derive(Default)]
pub struct Fanout {
    sinks: Vec<Box<dyn Observer + Send>>,
}

impl Fanout {
    pub fn new(sinks: Vec<Box<dyn Observer + Send>>) -> Self {
        Self { sinks }
    }

    pub fn push(&mut self, sink: Box<dyn Observer + Send>) {
        self.sinks.push(sink);
    }

    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Observer for Fanout {
    fn event(&self, e: &Event<'_>) {
        for s in &self.sinks {
            s.event(e);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn wants_bfs_detail(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_bfs_detail())
    }
}

thread_local! {
    /// Stack of open phase spans on this thread; the top is the parent
    /// of the next span entered here. Phase spans are entered and
    /// dropped on the same thread (LIFO), so a thread-local stack is
    /// enough to reconstruct nesting without any synchronization.
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// RAII phase span: emits [`Event::PhaseStart`] on creation and
/// [`Event::PhaseEnd`] with the elapsed wall-clock nanoseconds on drop.
///
/// When the observer is enabled, the span gets a fresh [`SpanId`] and
/// records the enclosing span on the same thread as its parent; when
/// disabled, no id is allocated and the thread-local stack is untouched.
pub struct PhaseSpan<'a> {
    obs: &'a dyn Observer,
    phase: Phase,
    span: SpanId,
    start: Instant,
}

impl<'a> PhaseSpan<'a> {
    pub fn enter(obs: &'a dyn Observer, phase: Phase) -> Self {
        let (span, parent) = if obs.enabled() {
            let span = SpanId::fresh();
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied().unwrap_or(SpanId::NONE);
                s.push(span);
                parent
            });
            (span, parent)
        } else {
            (SpanId::NONE, SpanId::NONE)
        };
        obs.event(&Event::PhaseStart {
            phase,
            span,
            parent,
        });
        Self {
            obs,
            phase,
            span,
            start: Instant::now(),
        }
    }

    /// Id of this span ([`SpanId::NONE`] when the observer is disabled).
    pub fn id(&self) -> SpanId {
        self.span
    }
}

impl Drop for PhaseSpan<'_> {
    fn drop(&mut self) {
        if !self.span.is_none() {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Pop our own id; tolerate a foreign top defensively.
                if s.last() == Some(&self.span) {
                    s.pop();
                } else if let Some(pos) = s.iter().rposition(|&x| x == self.span) {
                    s.truncate(pos);
                }
            });
        }
        self.obs.event(&Event::PhaseEnd {
            phase: self.phase,
            nanos: self.start.elapsed().as_nanos() as u64,
            span: self.span,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Test helper: records event names.
    pub(crate) struct Recorder(pub Mutex<Vec<String>>);

    impl Recorder {
        pub fn new() -> Self {
            Recorder(Mutex::new(Vec::new()))
        }
    }

    impl Observer for Recorder {
        fn event(&self, e: &Event<'_>) {
            self.0.lock().unwrap().push(e.name().to_string());
        }
    }

    #[test]
    fn noop_is_disabled() {
        assert!(!noop().enabled());
        assert!(!noop().wants_bfs_detail());
        noop().event(&Event::BfsStart {
            source: 0,
            span: SpanId::NONE,
        }); // must not panic
    }

    #[test]
    fn tee_duplicates_and_ors_flags() {
        let a = Recorder::new();
        let b = Recorder::new();
        let t = Tee(&a, &b);
        assert!(t.enabled());
        t.event(&Event::BfsStart {
            source: 3,
            span: SpanId::NONE,
        });
        assert_eq!(*a.0.lock().unwrap(), vec!["bfs_start"]);
        assert_eq!(*b.0.lock().unwrap(), vec!["bfs_start"]);

        let t2 = Tee(noop(), noop());
        assert!(!t2.enabled());
        let t3 = Tee(noop(), &a);
        assert!(t3.enabled() && t3.wants_bfs_detail());
    }

    #[test]
    fn fanout_delivers_to_all() {
        let mut f = Fanout::default();
        assert!(f.is_empty());
        assert!(!f.enabled());
        f.push(Box::new(NoopObserver));
        assert!(!f.enabled(), "noop-only fanout stays disabled");
        f.event(&Event::Progress {
            active: 1,
            bound: 2,
        });
    }

    #[test]
    fn span_emits_start_and_end() {
        let r = Recorder::new();
        {
            let _s = PhaseSpan::enter(&r, Phase::Winnow);
            r.event(&Event::WinnowGrown { radius: 2 });
        }
        assert_eq!(
            *r.0.lock().unwrap(),
            vec!["phase_start", "winnow", "phase_end"]
        );
    }

    /// Records full phase span events (not just names).
    struct SpanRecorder(Mutex<Vec<(Phase, SpanId, SpanId)>>);

    impl Observer for SpanRecorder {
        fn event(&self, e: &Event<'_>) {
            if let Event::PhaseStart {
                phase,
                span,
                parent,
            } = *e
            {
                self.0.lock().unwrap().push((phase, span, parent));
            }
        }
    }

    #[test]
    fn nested_spans_record_parent_links() {
        let r = SpanRecorder(Mutex::new(Vec::new()));
        {
            let outer = PhaseSpan::enter(&r, Phase::TwoSweep);
            assert!(!outer.id().is_none());
            {
                let inner = PhaseSpan::enter(&r, Phase::EccBfs);
                assert_ne!(inner.id(), outer.id());
            }
            let sibling = PhaseSpan::enter(&r, Phase::EccBfs);
            drop(sibling);
        }
        // After all spans closed, a fresh root must again have no parent.
        let root2 = PhaseSpan::enter(&r, Phase::Winnow);
        drop(root2);

        let spans = r.0.lock().unwrap();
        assert_eq!(spans.len(), 4);
        let (_, outer_id, outer_parent) = spans[0];
        assert_eq!(outer_parent, SpanId::NONE);
        assert_eq!(spans[1].2, outer_id, "inner span's parent is outer");
        assert_eq!(spans[2].2, outer_id, "sibling span's parent is outer");
        assert_eq!(spans[3].2, SpanId::NONE, "post-close span is a root");
    }

    #[test]
    fn disabled_span_allocates_no_id() {
        let s = PhaseSpan::enter(noop(), Phase::Chain);
        assert!(s.id().is_none());
    }
}
