//! The event vocabulary of the F-Diam pipeline.
//!
//! Events are borrowed and short-lived: algorithm code constructs them
//! on the stack and hands a reference to [`crate::Observer::event`].
//! Consumers that need to keep data (sinks, registries) copy what they
//! need.

/// A named phase of Algorithm 1. Phases are emitted as
/// [`Event::PhaseStart`] / [`Event::PhaseEnd`] span pairs.
///
/// `EccBfs` spans nest inside `TwoSweep` (the 2-sweep performs two
/// eccentricity BFS calls), so summing phase durations must use the
/// four leaf phases (`EccBfs`, `Winnow`, `Chain`, `Eliminate`) — those
/// are exactly the paper's Figure 8 stages and never overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// §4.1: the two initial BFS traversals establishing the lower bound.
    TwoSweep,
    /// §4.2: growing the winnow ball (initial and incremental).
    Winnow,
    /// §4.3: Chain Processing over all degree-1 chains.
    Chain,
    /// §4.4–4.5: Eliminate around a vertex or extension of all regions.
    Eliminate,
    /// One exact eccentricity BFS (2-sweep or main loop).
    EccBfs,
}

impl Phase {
    /// All phases, in pipeline order.
    pub const ALL: [Phase; 5] = [
        Phase::TwoSweep,
        Phase::Winnow,
        Phase::Chain,
        Phase::Eliminate,
        Phase::EccBfs,
    ];

    /// Stable snake_case name used in traces and metrics.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TwoSweep => "two_sweep",
            Phase::Winnow => "winnow",
            Phase::Chain => "chain",
            Phase::Eliminate => "eliminate",
            Phase::EccBfs => "ecc_bfs",
        }
    }
}

use crate::ids::{RunId, SpanId};
use crate::registry::BoundsSnapshot;

/// One observable occurrence inside the F-Diam stack.
#[derive(Clone, Debug, PartialEq)]
pub enum Event<'a> {
    /// A diameter run began.
    RunStart {
        /// Human name of the algorithm variant (e.g. `"fdiam"`).
        algorithm: &'a str,
        /// Number of vertices.
        n: usize,
        /// Number of undirected edges.
        m: usize,
        /// Correlation id of this run (request-scoped when set by the
        /// serving layer, freshly minted otherwise).
        run: RunId,
    },
    /// A phase span opened. `parent` is the enclosing phase span on the
    /// same thread, or [`SpanId::NONE`] for a root span.
    PhaseStart {
        phase: Phase,
        span: SpanId,
        parent: SpanId,
    },
    /// A phase span closed after `nanos` wall-clock nanoseconds.
    PhaseEnd {
        phase: Phase,
        nanos: u64,
        span: SpanId,
    },
    /// An eccentricity BFS began from `source`. The same `span` tags
    /// every per-level event of this traversal.
    BfsStart { source: u32, span: SpanId },
    /// One level-synchronous BFS expansion completed. Only emitted when
    /// the observer asks for detail
    /// ([`crate::Observer::wants_bfs_detail`]); the final expansion is
    /// reported too (with `frontier == 0`).
    BfsLevel {
        /// Level just produced (1 = direct neighbors of the source).
        level: u32,
        /// Size of the frontier produced at this level.
        frontier: usize,
        /// Edges examined by this expansion (exact for top-down; for
        /// bottom-up, neighbors examined until the first visited hit).
        edges_scanned: u64,
        /// Whether the expansion ran bottom-up (topology-driven).
        bottom_up: bool,
        /// Span of the enclosing BFS traversal.
        span: SpanId,
    },
    /// The BFS switched expansion direction before producing `level`.
    DirectionSwitch {
        level: u32,
        bottom_up: bool,
        span: SpanId,
    },
    /// The visit-epoch counter wrapped and all marks were reset;
    /// `rollovers` is the total number of wraps so far.
    EpochRollover { rollovers: u64 },
    /// An eccentricity BFS finished.
    BfsEnd {
        source: u32,
        eccentricity: u32,
        visited: usize,
        span: SpanId,
    },
    /// The diameter lower bound improved from `old` to `new` after
    /// computing `ecc(source) = new` — the per-iteration convergence
    /// signal (cf. the bound-tracking methodology of arXiv:0904.2728).
    BoundUpdate { old: u32, new: u32, source: u32 },
    /// Certified `[lb, ub]` diameter-bounds snapshot published after
    /// every eccentricity sweep — the live convergence signal behind
    /// the run registry and `GET /v1/runs`. Distinct from
    /// [`Event::BoundUpdate`], which reports only lower-bound
    /// improvements of the F-Diam main loop.
    BoundsUpdate {
        /// The full snapshot (copied verbatim into run registries).
        snapshot: BoundsSnapshot,
    },
    /// The winnow ball grew to `radius` (counted as a BFS traversal in
    /// Table 3).
    WinnowGrown { radius: u32 },
    /// An Eliminate call removed `removed` vertices; `extension` marks
    /// the §4.5 multi-source extension triggered by a bound rise.
    EliminateRun { removed: usize, extension: bool },
    /// Chain Processing handled `count` degree-1 chains.
    ChainsProcessed { count: usize },
    /// Main-loop progress heartbeat: vertices still active and the
    /// current lower bound.
    Progress { active: usize, bound: u32 },
    /// Per-worker load accounting for the run's parallel BFS work
    /// (Figure-style §4.6 scaling telemetry): how the edge-scan work
    /// and busy time distributed across rayon workers.
    WorkerLoad {
        /// Number of worker slots (the rayon pool width).
        workers: usize,
        /// Total edges scanned by accounted parallel expansions.
        total_edges: u64,
        /// Busiest worker's accumulated busy time.
        max_busy_nanos: u64,
        /// Mean busy time across all `workers` slots.
        mean_busy_nanos: u64,
        /// Load imbalance `max/mean` (0.0 when no work was accounted).
        imbalance: f64,
    },
    /// End-of-run vertex-removal breakdown (the paper's Figure 9
    /// shape): how every vertex left the active set.
    RemovalSummary {
        winnow: usize,
        eliminate: usize,
        chain: usize,
        degree0: usize,
        /// Vertices whose eccentricity was computed exactly.
        computed: usize,
    },
    /// The run finished.
    RunEnd {
        diameter: u32,
        connected: bool,
        nanos: u64,
        run: RunId,
    },
}

impl Event<'_> {
    /// Stable snake_case name used as the `type` field in traces.
    pub fn name(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::PhaseStart { .. } => "phase_start",
            Event::PhaseEnd { .. } => "phase_end",
            Event::BfsStart { .. } => "bfs_start",
            Event::BfsLevel { .. } => "bfs_level",
            Event::DirectionSwitch { .. } => "direction_switch",
            Event::EpochRollover { .. } => "epoch_rollover",
            Event::BfsEnd { .. } => "bfs_end",
            Event::BoundUpdate { .. } => "bound_update",
            Event::BoundsUpdate { .. } => "bounds_update",
            Event::WinnowGrown { .. } => "winnow",
            Event::EliminateRun { .. } => "eliminate",
            Event::ChainsProcessed { .. } => "chains",
            Event::Progress { .. } => "progress",
            Event::WorkerLoad { .. } => "worker_load",
            Event::RemovalSummary { .. } => "removal_summary",
            Event::RunEnd { .. } => "run_end",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_unique() {
        let mut names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Phase::ALL.len());
    }

    #[test]
    fn event_names_stable() {
        assert_eq!(
            Event::BfsStart {
                source: 0,
                span: SpanId::NONE
            }
            .name(),
            "bfs_start"
        );
        assert_eq!(
            Event::PhaseEnd {
                phase: Phase::Winnow,
                nanos: 1,
                span: SpanId::NONE
            }
            .name(),
            "phase_end"
        );
        assert_eq!(
            Event::RunEnd {
                diameter: 1,
                connected: true,
                nanos: 0,
                run: RunId(1)
            }
            .name(),
            "run_end"
        );
        assert_eq!(
            Event::WorkerLoad {
                workers: 1,
                total_edges: 0,
                max_busy_nanos: 0,
                mean_busy_nanos: 0,
                imbalance: 0.0
            }
            .name(),
            "worker_load"
        );
        assert_eq!(
            Event::RemovalSummary {
                winnow: 0,
                eliminate: 0,
                chain: 0,
                degree0: 0,
                computed: 0
            }
            .name(),
            "removal_summary"
        );
        // The per-sweep snapshot event must stay distinguishable from
        // the lower-bound-only "bound_update".
        assert_eq!(
            Event::BoundsUpdate {
                snapshot: BoundsSnapshot {
                    run: RunId(1),
                    phase: "main_loop",
                    bfs_count: 1,
                    lb: 1,
                    ub: 2,
                    vertices_remaining: 3,
                    elapsed_nanos: 4,
                }
            }
            .name(),
            "bounds_update"
        );
        assert_eq!(
            Event::BoundUpdate {
                old: 0,
                new: 1,
                source: 0
            }
            .name(),
            "bound_update"
        );
    }
}
