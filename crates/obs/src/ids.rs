//! Run and span identifiers for event correlation.
//!
//! A [`RunId`] names one diameter computation end to end: the serving
//! layer mints one at request admission, threads it through
//! `FdiamConfig` into the core driver, and every consumer (access log,
//! trace sink, metrics labels, response body) renders the same 16-hex
//! value so a single grep correlates all four. A [`SpanId`] names one
//! phase span or BFS traversal within a process; span ids are small
//! process-local counters, unique per process rather than globally.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// splitmix64 finalizer: scatters a counter into a well-mixed word.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix(nanos ^ ((std::process::id() as u64) << 32))
    })
}

/// Identifier of one diameter run, rendered as 16 lowercase hex digits.
///
/// Ids from [`RunId::fresh`] are never zero, so `RunId(0)` can serve as
/// an explicit "unassigned" sentinel where an `Option` is unavailable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunId(pub u64);

impl RunId {
    /// Mints a new process-unique (and collision-resistant across
    /// processes) run id.
    pub fn fresh() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let id = mix(process_seed() ^ n);
        RunId(if id == 0 { 1 } else { id })
    }

    /// Parses the 16-hex-digit rendering produced by `Display`.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(RunId)
    }
}

impl fmt::Display for RunId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one phase span or BFS traversal; `SpanId::NONE` (zero)
/// means "no span" (disabled observer, or a root span's parent).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span (also the parent of root spans).
    pub const NONE: SpanId = SpanId(0);

    /// Allocates the next process-local span id (never zero).
    pub fn fresh() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        SpanId(COUNTER.fetch_add(1, Ordering::Relaxed))
    }

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_ids_are_unique_and_nonzero() {
        let a = RunId::fresh();
        let b = RunId::fresh();
        assert_ne!(a, b);
        assert_ne!(a.0, 0);
        assert_ne!(b.0, 0);
    }

    #[test]
    fn run_id_hex_round_trips() {
        let id = RunId::fresh();
        let hex = id.to_string();
        assert_eq!(hex.len(), 16);
        assert!(hex.bytes().all(|b| b.is_ascii_hexdigit()));
        assert_eq!(RunId::from_hex(&hex), Some(id));
        assert_eq!(RunId::from_hex("xyz"), None);
        assert_eq!(RunId::from_hex(""), None);
    }

    #[test]
    fn span_ids_increment_and_none_is_zero() {
        let a = SpanId::fresh();
        let b = SpanId::fresh();
        assert!(a.0 < b.0);
        assert!(SpanId::NONE.is_none());
        assert!(!a.is_none());
    }
}
