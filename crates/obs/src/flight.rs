//! The flight recorder: an always-on, bounded, near-zero-cost black box.
//!
//! A [`FlightRecorder`] keeps the most recent [`Event`]s in a
//! fixed-capacity, per-thread-sharded ring buffer with drop-oldest
//! semantics. It tees alongside any other [`Observer`], so every run is
//! recorded whether or not anyone asked to watch it; when a request
//! turns out to have been slow, or a worker panics, the evidence of
//! what the process was doing is still in memory and can be dumped
//! after the fact ([`FlightRecorder::dump_jsonl`]) in the same JSONL
//! schema the trace sink writes, so `fdiam-trace` consumes flight dumps
//! directly.
//!
//! Design constraints, in order:
//!
//! 1. **Steady-state allocation-free record path.** Events are copied
//!    into pre-allocated ring slots as a fixed-size owned
//!    representation (`OwnedEvent`); the only allocations happen at
//!    construction time (and once per thread for the thread-local shard
//!    hint). The counting-allocator tests in `tests/flight_storm.rs`
//!    enforce this.
//! 2. **Bounded.** Each shard holds exactly `capacity` events; when
//!    full, the oldest event is overwritten and the shard's `dropped`
//!    counter advances. Per-shard sequence numbers increase
//!    monotonically with every recorded event, so a dump reader can
//!    prove whether its view is complete (`retained + dropped ==
//!    emitted`) and where the gap is.
//! 3. **Low contention.** Threads are spread over shards by a
//!    thread-local hint, so the per-shard mutex is effectively
//!    uncontended at steady state.
//!
//! Per-level BFS detail (`bfs_level`, `direction_switch`) can dominate
//! the ring by orders of magnitude over lifecycle events; the
//! `detail_sample` knob records detail for only 1-in-N traversals
//! (chosen at `bfs_start`) so a ring of modest capacity still holds
//! whole runs. The recorder never *requests* detail
//! ([`Observer::wants_bfs_detail`] is `false`): it samples what other
//! observers caused to be computed, keeping the always-on cost near
//! zero when nobody is watching.
//!
//! The module also owns the process panic hook machinery
//! ([`register_post_mortem`]): on panic, every registered recorder
//! dumps its ring plus caller-supplied context (fdiam-serve adds the
//! in-flight run registry) to a post-mortem file before unwinding.

use crate::event::{Event, Phase};
use crate::ids::{RunId, SpanId};
use crate::json::JsonObject;
use crate::jsonl::encode_event;
use crate::observer::Observer;
use crate::registry::BoundsSnapshot;
use std::cell::Cell;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, Weak};
use std::time::Instant;

/// Longest algorithm name stored inline in a ring slot; longer names
/// are truncated at a char boundary (every in-tree name fits).
const ALGO_CAP: usize = 24;

/// Slots in the sampled-traversal table (power of two). Collisions make
/// the 1-in-N detail sampling approximate, never unsafe.
const SPAN_SLOTS: usize = 64;

/// A short string stored inline (no heap) in a ring slot.
#[derive(Clone, Copy, Debug)]
struct InlineStr {
    len: u8,
    bytes: [u8; ALGO_CAP],
}

impl InlineStr {
    fn new(s: &str) -> Self {
        let mut len = s.len().min(ALGO_CAP);
        while len > 0 && !s.is_char_boundary(len) {
            len -= 1;
        }
        let mut bytes = [0u8; ALGO_CAP];
        bytes[..len].copy_from_slice(&s.as_bytes()[..len]);
        Self {
            len: len as u8,
            bytes,
        }
    }

    fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).unwrap_or("")
    }
}

/// Fixed-size owned mirror of [`Event`]: what a ring slot stores.
/// Copying an `Event` into this form never allocates.
#[derive(Clone, Copy, Debug)]
enum OwnedEvent {
    RunStart {
        algorithm: InlineStr,
        n: usize,
        m: usize,
        run: RunId,
    },
    PhaseStart {
        phase: Phase,
        span: SpanId,
        parent: SpanId,
    },
    PhaseEnd {
        phase: Phase,
        nanos: u64,
        span: SpanId,
    },
    BfsStart {
        source: u32,
        span: SpanId,
    },
    BfsLevel {
        level: u32,
        frontier: usize,
        edges_scanned: u64,
        bottom_up: bool,
        span: SpanId,
    },
    DirectionSwitch {
        level: u32,
        bottom_up: bool,
        span: SpanId,
    },
    EpochRollover {
        rollovers: u64,
    },
    BfsEnd {
        source: u32,
        eccentricity: u32,
        visited: usize,
        span: SpanId,
    },
    BoundUpdate {
        old: u32,
        new: u32,
        source: u32,
    },
    BoundsUpdate {
        snapshot: BoundsSnapshot,
    },
    WinnowGrown {
        radius: u32,
    },
    EliminateRun {
        removed: usize,
        extension: bool,
    },
    ChainsProcessed {
        count: usize,
    },
    Progress {
        active: usize,
        bound: u32,
    },
    WorkerLoad {
        workers: usize,
        total_edges: u64,
        max_busy_nanos: u64,
        mean_busy_nanos: u64,
        imbalance: f64,
    },
    RemovalSummary {
        winnow: usize,
        eliminate: usize,
        chain: usize,
        degree0: usize,
        computed: usize,
    },
    RunEnd {
        diameter: u32,
        connected: bool,
        nanos: u64,
        run: RunId,
    },
}

impl OwnedEvent {
    fn capture(e: &Event<'_>) -> Self {
        match *e {
            Event::RunStart {
                algorithm,
                n,
                m,
                run,
            } => OwnedEvent::RunStart {
                algorithm: InlineStr::new(algorithm),
                n,
                m,
                run,
            },
            Event::PhaseStart {
                phase,
                span,
                parent,
            } => OwnedEvent::PhaseStart {
                phase,
                span,
                parent,
            },
            Event::PhaseEnd { phase, nanos, span } => OwnedEvent::PhaseEnd { phase, nanos, span },
            Event::BfsStart { source, span } => OwnedEvent::BfsStart { source, span },
            Event::BfsLevel {
                level,
                frontier,
                edges_scanned,
                bottom_up,
                span,
            } => OwnedEvent::BfsLevel {
                level,
                frontier,
                edges_scanned,
                bottom_up,
                span,
            },
            Event::DirectionSwitch {
                level,
                bottom_up,
                span,
            } => OwnedEvent::DirectionSwitch {
                level,
                bottom_up,
                span,
            },
            Event::EpochRollover { rollovers } => OwnedEvent::EpochRollover { rollovers },
            Event::BfsEnd {
                source,
                eccentricity,
                visited,
                span,
            } => OwnedEvent::BfsEnd {
                source,
                eccentricity,
                visited,
                span,
            },
            Event::BoundUpdate { old, new, source } => OwnedEvent::BoundUpdate { old, new, source },
            Event::BoundsUpdate { snapshot } => OwnedEvent::BoundsUpdate { snapshot },
            Event::WinnowGrown { radius } => OwnedEvent::WinnowGrown { radius },
            Event::EliminateRun { removed, extension } => {
                OwnedEvent::EliminateRun { removed, extension }
            }
            Event::ChainsProcessed { count } => OwnedEvent::ChainsProcessed { count },
            Event::Progress { active, bound } => OwnedEvent::Progress { active, bound },
            Event::WorkerLoad {
                workers,
                total_edges,
                max_busy_nanos,
                mean_busy_nanos,
                imbalance,
            } => OwnedEvent::WorkerLoad {
                workers,
                total_edges,
                max_busy_nanos,
                mean_busy_nanos,
                imbalance,
            },
            Event::RemovalSummary {
                winnow,
                eliminate,
                chain,
                degree0,
                computed,
            } => OwnedEvent::RemovalSummary {
                winnow,
                eliminate,
                chain,
                degree0,
                computed,
            },
            Event::RunEnd {
                diameter,
                connected,
                nanos,
                run,
            } => OwnedEvent::RunEnd {
                diameter,
                connected,
                nanos,
                run,
            },
        }
    }

    /// Reborrows as an [`Event`] for encoding (dump path only).
    fn as_event(&self) -> Event<'_> {
        match *self {
            OwnedEvent::RunStart {
                ref algorithm,
                n,
                m,
                run,
            } => Event::RunStart {
                algorithm: algorithm.as_str(),
                n,
                m,
                run,
            },
            OwnedEvent::PhaseStart {
                phase,
                span,
                parent,
            } => Event::PhaseStart {
                phase,
                span,
                parent,
            },
            OwnedEvent::PhaseEnd { phase, nanos, span } => Event::PhaseEnd { phase, nanos, span },
            OwnedEvent::BfsStart { source, span } => Event::BfsStart { source, span },
            OwnedEvent::BfsLevel {
                level,
                frontier,
                edges_scanned,
                bottom_up,
                span,
            } => Event::BfsLevel {
                level,
                frontier,
                edges_scanned,
                bottom_up,
                span,
            },
            OwnedEvent::DirectionSwitch {
                level,
                bottom_up,
                span,
            } => Event::DirectionSwitch {
                level,
                bottom_up,
                span,
            },
            OwnedEvent::EpochRollover { rollovers } => Event::EpochRollover { rollovers },
            OwnedEvent::BfsEnd {
                source,
                eccentricity,
                visited,
                span,
            } => Event::BfsEnd {
                source,
                eccentricity,
                visited,
                span,
            },
            OwnedEvent::BoundUpdate { old, new, source } => Event::BoundUpdate { old, new, source },
            OwnedEvent::BoundsUpdate { snapshot } => Event::BoundsUpdate { snapshot },
            OwnedEvent::WinnowGrown { radius } => Event::WinnowGrown { radius },
            OwnedEvent::EliminateRun { removed, extension } => {
                Event::EliminateRun { removed, extension }
            }
            OwnedEvent::ChainsProcessed { count } => Event::ChainsProcessed { count },
            OwnedEvent::Progress { active, bound } => Event::Progress { active, bound },
            OwnedEvent::WorkerLoad {
                workers,
                total_edges,
                max_busy_nanos,
                mean_busy_nanos,
                imbalance,
            } => Event::WorkerLoad {
                workers,
                total_edges,
                max_busy_nanos,
                mean_busy_nanos,
                imbalance,
            },
            OwnedEvent::RemovalSummary {
                winnow,
                eliminate,
                chain,
                degree0,
                computed,
            } => Event::RemovalSummary {
                winnow,
                eliminate,
                chain,
                degree0,
                computed,
            },
            OwnedEvent::RunEnd {
                diameter,
                connected,
                nanos,
                run,
            } => Event::RunEnd {
                diameter,
                connected,
                nanos,
                run,
            },
        }
    }
}

/// One recorded ring slot.
#[derive(Clone, Copy, Debug)]
struct FlightEvent {
    /// Per-shard sequence number (1-based, dense within a shard).
    seq: u64,
    /// Microseconds since recorder creation.
    ts_us: u64,
    data: OwnedEvent,
}

/// One shard's ring. `head` is the overwrite cursor: 0 until the ring
/// fills, thereafter the index of the oldest retained event.
struct Ring {
    buf: Vec<FlightEvent>,
    capacity: usize,
    head: usize,
    /// Total events ever recorded to this shard (== last assigned seq).
    emitted: u64,
    /// Events overwritten (`emitted - retained`).
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            emitted: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, mut ev: FlightEvent) {
        self.emitted += 1;
        ev.seq = self.emitted;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Retained events, oldest first.
    fn ordered(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

/// Sizing and sampling knobs for a [`FlightRecorder`].
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// Number of ring shards (rounded up to a power of two, min 1).
    pub shards: usize,
    /// Events retained per shard.
    pub capacity: usize,
    /// Record per-level BFS detail for 1-in-N traversals: `1` keeps
    /// every level event, `0` drops them all, `N > 1` samples the
    /// traversals chosen at `bfs_start`. Lifecycle events are always
    /// recorded.
    pub detail_sample: u32,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity: 4096,
            detail_sample: 16,
        }
    }
}

/// Statistics of one shard, as reported by
/// [`FlightRecorder::shard_stats`]. The accounting invariant
/// `emitted == retained + dropped` always holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardStats {
    pub shard: usize,
    /// Events ever recorded to this shard (== its highest seq).
    pub emitted: u64,
    /// Events currently held in the ring.
    pub retained: usize,
    /// Events overwritten by drop-oldest.
    pub dropped: u64,
}

thread_local! {
    /// Process-wide thread index used to spread threads over shards;
    /// assigned on a thread's first record and reused for its lifetime.
    static THREAD_HINT: Cell<usize> = const { Cell::new(usize::MAX) };
}

static NEXT_THREAD_HINT: AtomicUsize = AtomicUsize::new(0);

/// The always-on bounded event recorder. See the module docs.
pub struct FlightRecorder {
    shards: Box<[Mutex<Ring>]>,
    mask: usize,
    detail_sample: u32,
    /// Traversals seen so far (drives the 1-in-N sampling decision).
    bfs_starts: AtomicU64,
    /// Span ids of traversals currently sampled for per-level detail.
    sampled_spans: [AtomicU64; SPAN_SLOTS],
    start: Instant,
}

impl FlightRecorder {
    pub fn new(config: FlightConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        let capacity = config.capacity.max(16);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(Ring::new(capacity)))
                .collect(),
            mask: shards - 1,
            detail_sample: config.detail_sample,
            bfs_starts: AtomicU64::new(0),
            sampled_spans: std::array::from_fn(|_| AtomicU64::new(0)),
            start: Instant::now(),
        }
    }

    /// Microseconds since recorder creation — the clock of every
    /// `ts_us` in this recorder's dump. Serving code uses it to bracket
    /// a request's time window for tail-sampled slices.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Number of ring shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn lock_shard(&self, k: usize) -> MutexGuard<'_, Ring> {
        // A panic can never happen while a ring lock is held (push has
        // no panicking paths), but the panic-hook dump must not die on
        // a poisoned mutex either way.
        match self.shards[k].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shard_index(&self) -> usize {
        THREAD_HINT.with(|c| {
            let mut hint = c.get();
            if hint == usize::MAX {
                hint = NEXT_THREAD_HINT.fetch_add(1, Ordering::Relaxed);
                c.set(hint);
            }
            hint & self.mask
        })
    }

    fn span_slot(span: SpanId) -> usize {
        // splitmix64-style scatter; top bits pick one of SPAN_SLOTS.
        (span.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58) as usize & (SPAN_SLOTS - 1)
    }

    fn mark_sampled(&self, span: SpanId) {
        self.sampled_spans[Self::span_slot(span)].store(span.0, Ordering::Relaxed);
    }

    fn is_sampled(&self, span: SpanId) -> bool {
        self.sampled_spans[Self::span_slot(span)].load(Ordering::Relaxed) == span.0
    }

    fn clear_sampled(&self, span: SpanId) {
        let _ = self.sampled_spans[Self::span_slot(span)].compare_exchange(
            span.0,
            0,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// The event-volume guard: should this event enter the ring?
    fn admits(&self, e: &Event<'_>) -> bool {
        match *e {
            Event::BfsStart { span, .. } => {
                if self.detail_sample > 1 && !span.is_none() {
                    let count = self.bfs_starts.fetch_add(1, Ordering::Relaxed);
                    if count % self.detail_sample as u64 == 0 {
                        self.mark_sampled(span);
                    }
                }
                true
            }
            Event::BfsLevel { span, .. } | Event::DirectionSwitch { span, .. } => {
                match self.detail_sample {
                    0 => false,
                    1 => true,
                    _ => self.is_sampled(span),
                }
            }
            Event::BfsEnd { span, .. } => {
                if self.detail_sample > 1 {
                    self.clear_sampled(span);
                }
                true
            }
            _ => true,
        }
    }

    /// Per-shard accounting, ordered by shard index.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        (0..self.shards.len())
            .map(|k| {
                let ring = self.lock_shard(k);
                ShardStats {
                    shard: k,
                    emitted: ring.emitted,
                    retained: ring.buf.len(),
                    dropped: ring.dropped,
                }
            })
            .collect()
    }

    /// Total events overwritten across all shards.
    pub fn total_dropped(&self) -> u64 {
        self.shard_stats().iter().map(|s| s.dropped).sum()
    }

    /// Dumps the merged ring as fdiam-trace-compatible JSONL: one event
    /// per line in the `encode_event` schema plus `"seq"` and
    /// `"shard"` fields, globally timestamp-ordered (per-shard seq
    /// order is preserved). Shards that overwrote events contribute an
    /// explicit gap marker line
    /// `{"type":"dropped","shard":k,"dropped":d,"next_seq":s,...}`
    /// placed before their oldest retained event.
    pub fn dump_jsonl(&self) -> String {
        self.dump_window_jsonl(0, u64::MAX)
    }

    /// Like [`FlightRecorder::dump_jsonl`] but restricted to events
    /// with `ts_us` in `[from_us, to_us]` — the correlated slice a
    /// tail sampler persists for one slow request. Events of concurrent
    /// runs inside the window are included deliberately: a slow run's
    /// forensics usually need to see its neighbors.
    pub fn dump_window_jsonl(&self, from_us: u64, to_us: u64) -> String {
        struct Line {
            ts: u64,
            shard: usize,
            seq: u64,
            event: bool,
            text: String,
        }
        let mut lines: Vec<Line> = Vec::new();
        for k in 0..self.shards.len() {
            let ring = self.lock_shard(k);
            let mut first_kept: Option<&FlightEvent> = None;
            for ev in ring.ordered() {
                if ev.ts_us < from_us || ev.ts_us > to_us {
                    continue;
                }
                first_kept.get_or_insert(ev);
                let mut text = encode_event(&ev.data.as_event(), ev.ts_us);
                text.pop();
                let _ = write!(text, ",\"seq\":{},\"shard\":{k}}}", ev.seq);
                lines.push(Line {
                    ts: ev.ts_us,
                    shard: k,
                    seq: ev.seq,
                    event: true,
                    text,
                });
            }
            if ring.dropped > 0 {
                if let Some(first) = first_kept {
                    let text = JsonObject::new()
                        .str("type", "dropped")
                        .u64("ts_us", first.ts_us)
                        .usize("shard", k)
                        .u64("dropped", ring.dropped)
                        .u64("next_seq", first.seq)
                        .finish();
                    lines.push(Line {
                        ts: first.ts_us,
                        shard: k,
                        seq: first.seq,
                        event: false,
                        text,
                    });
                }
            }
        }
        // Markers sort before the event they precede (same ts/shard/seq).
        lines.sort_by_key(|l| (l.ts, l.shard, l.seq, l.event));
        let mut out = String::new();
        for l in lines {
            out.push_str(&l.text);
            out.push('\n');
        }
        out
    }
}

impl Observer for FlightRecorder {
    fn event(&self, e: &Event<'_>) {
        if !self.admits(e) {
            return;
        }
        let data = OwnedEvent::capture(e);
        let k = self.shard_index();
        let mut ring = self.lock_shard(k);
        // The timestamp is taken under the shard lock so that within a
        // shard, seq order and ts order always agree — the dump's
        // global (ts, shard, seq) sort must preserve per-shard seq
        // order for gap detection to be sound.
        let ts_us = self.elapsed_us();
        ring.push(FlightEvent {
            seq: 0,
            ts_us,
            data,
        });
    }

    // The recorder never *asks* for per-level detail: it samples what
    // other observers caused to be computed. This keeps the always-on
    // cost near zero when nobody is watching a run.
    fn wants_bfs_detail(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------
// Panic post-mortems.
// ---------------------------------------------------------------------

struct PostMortemSink {
    id: u64,
    recorder: Weak<FlightRecorder>,
    path: PathBuf,
    /// Extra JSONL lines written between the header and the ring dump
    /// (fdiam-serve passes its in-flight run registry snapshot).
    context: Box<dyn Fn() -> Vec<String> + Send + Sync>,
}

static POST_MORTEM_SINKS: Mutex<Vec<PostMortemSink>> = Mutex::new(Vec::new());

fn sinks_lock() -> MutexGuard<'static, Vec<PostMortemSink>> {
    match POST_MORTEM_SINKS.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Deregisters its post-mortem sink on drop.
pub struct PostMortemGuard {
    id: u64,
}

impl Drop for PostMortemGuard {
    fn drop(&mut self) {
        sinks_lock().retain(|s| s.id != self.id);
    }
}

/// Registers `recorder` for panic post-mortems: if any thread panics
/// while the returned guard lives, a JSONL post-mortem file is written
/// to `path` (truncating a previous one) containing a `post_mortem`
/// header line (panic message, location, thread), the `context` lines,
/// and the full ring dump — then the previously installed panic hook
/// runs and unwinding proceeds.
///
/// The process-global hook is installed once (chaining whatever hook
/// was installed before) and serves every registered recorder.
pub fn register_post_mortem(
    recorder: &Arc<FlightRecorder>,
    path: impl Into<PathBuf>,
    context: impl Fn() -> Vec<String> + Send + Sync + 'static,
) -> PostMortemGuard {
    static INSTALL: Once = Once::new();
    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let location = info
                .location()
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_default();
            let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = info.payload().downcast_ref::<String>() {
                s.clone()
            } else {
                "<non-string panic payload>".to_string()
            };
            // Write every sink's post-mortem before unwinding starts.
            for sink in sinks_lock().iter() {
                if let Some(recorder) = sink.recorder.upgrade() {
                    let _ = write_post_mortem(
                        &recorder,
                        &sink.path,
                        &message,
                        &location,
                        &*sink.context,
                    );
                }
            }
            prev(info);
        }));
    });
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    sinks_lock().push(PostMortemSink {
        id,
        recorder: Arc::downgrade(recorder),
        path: path.into(),
        context: Box::new(context),
    });
    PostMortemGuard { id }
}

/// Writes one post-mortem file: header line, context lines, ring dump.
/// Public so tests (and operators' tooling) can produce the exact
/// artifact the panic hook writes.
pub fn write_post_mortem(
    recorder: &FlightRecorder,
    path: &Path,
    message: &str,
    location: &str,
    context: &dyn Fn() -> Vec<String>,
) -> io::Result<()> {
    let thread = std::thread::current();
    let header = JsonObject::new()
        .str("type", "post_mortem")
        .u64("ts_us", recorder.elapsed_us())
        .str("message", message)
        .str("location", location)
        .str("thread", thread.name().unwrap_or("<unnamed>"))
        .finish();
    let mut f = File::create(path)?;
    writeln!(f, "{header}")?;
    for line in context() {
        writeln!(f, "{line}")?;
    }
    f.write_all(recorder.dump_jsonl().as_bytes())?;
    f.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    fn small(capacity: usize, detail_sample: u32) -> FlightRecorder {
        FlightRecorder::new(FlightConfig {
            shards: 1,
            capacity,
            detail_sample,
        })
    }

    fn parse_dump(dump: &str) -> Vec<JsonValue> {
        dump.lines()
            .map(|l| parse(l).expect("dump line must be valid JSON"))
            .collect()
    }

    fn progress(active: usize) -> Event<'static> {
        Event::Progress { active, bound: 1 }
    }

    #[test]
    fn records_and_dumps_in_order() {
        let r = small(64, 1);
        r.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 5,
            m: 4,
            run: RunId(0xabc),
        });
        r.event(&progress(3));
        r.event(&Event::RunEnd {
            diameter: 2,
            connected: true,
            nanos: 10,
            run: RunId(0xabc),
        });
        let lines = parse_dump(&r.dump_jsonl());
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].get("type").unwrap().as_str(), Some("run_start"));
        assert_eq!(lines[0].get("algorithm").unwrap().as_str(), Some("fdiam"));
        assert_eq!(lines[0].get("seq").unwrap().as_u64(), Some(1));
        assert_eq!(lines[0].get("shard").unwrap().as_u64(), Some(0));
        assert_eq!(lines[2].get("type").unwrap().as_str(), Some("run_end"));
        assert_eq!(lines[2].get("seq").unwrap().as_u64(), Some(3));
        let stats = r.shard_stats();
        assert_eq!(stats.iter().map(|s| s.emitted).sum::<u64>(), 3);
        assert_eq!(r.total_dropped(), 0);
    }

    #[test]
    fn drop_oldest_keeps_newest_and_emits_gap_marker() {
        let r = small(16, 1);
        for i in 0..40 {
            r.event(&progress(i));
        }
        let stats = &r.shard_stats()[0];
        assert_eq!(stats.emitted, 40);
        assert_eq!(stats.retained, 16);
        assert_eq!(stats.dropped, 24);
        assert_eq!(stats.emitted, stats.retained as u64 + stats.dropped);

        let lines = parse_dump(&r.dump_jsonl());
        assert_eq!(lines.len(), 17, "16 events + 1 gap marker");
        assert_eq!(lines[0].get("type").unwrap().as_str(), Some("dropped"));
        assert_eq!(lines[0].get("dropped").unwrap().as_u64(), Some(24));
        assert_eq!(lines[0].get("next_seq").unwrap().as_u64(), Some(25));
        // The retained events are the newest, seq-contiguous.
        let seqs: Vec<u64> = lines[1..]
            .iter()
            .map(|l| l.get("seq").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(seqs, (25..=40).collect::<Vec<u64>>());
        assert_eq!(lines[16].get("active").unwrap().as_u64(), Some(39));
    }

    #[test]
    fn detail_sampling_keeps_one_in_n_traversals() {
        let r = small(256, 2);
        for t in 0..4u64 {
            let span = SpanId(100 + t);
            r.event(&Event::BfsStart {
                source: t as u32,
                span,
            });
            for level in 1..=3u32 {
                r.event(&Event::BfsLevel {
                    level,
                    frontier: 5,
                    edges_scanned: 9,
                    bottom_up: false,
                    span,
                });
            }
            r.event(&Event::BfsEnd {
                source: t as u32,
                eccentricity: 3,
                visited: 10,
                span,
            });
        }
        let lines = parse_dump(&r.dump_jsonl());
        let count = |ty: &str| {
            lines
                .iter()
                .filter(|l| l.get("type").unwrap().as_str() == Some(ty))
                .count()
        };
        // Every lifecycle event is kept; levels only for traversals 0 and 2.
        assert_eq!(count("bfs_start"), 4);
        assert_eq!(count("bfs_end"), 4);
        assert_eq!(count("bfs_level"), 6);
        let sampled_spans: std::collections::BTreeSet<u64> = lines
            .iter()
            .filter(|l| l.get("type").unwrap().as_str() == Some("bfs_level"))
            .map(|l| l.get("span").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(sampled_spans, [100u64, 102].into_iter().collect());
    }

    #[test]
    fn detail_sample_zero_drops_all_levels() {
        let r = small(64, 0);
        r.event(&Event::BfsLevel {
            level: 1,
            frontier: 1,
            edges_scanned: 1,
            bottom_up: false,
            span: SpanId(7),
        });
        r.event(&Event::DirectionSwitch {
            level: 1,
            bottom_up: true,
            span: SpanId(7),
        });
        assert!(r.dump_jsonl().is_empty());
    }

    #[test]
    fn window_dump_filters_by_timestamp() {
        let r = small(64, 1);
        r.event(&progress(1));
        r.event(&progress(2));
        let full = parse_dump(&r.dump_jsonl());
        assert_eq!(full.len(), 2);
        // A window past every recorded timestamp is empty; the full
        // window returns everything.
        assert!(r.dump_window_jsonl(u64::MAX - 1, u64::MAX).is_empty());
        assert_eq!(parse_dump(&r.dump_window_jsonl(0, u64::MAX)).len(), 2);
    }

    #[test]
    fn long_algorithm_names_truncate_safely() {
        let r = small(64, 1);
        let long = "x".repeat(100);
        r.event(&Event::RunStart {
            algorithm: &long,
            n: 1,
            m: 0,
            run: RunId(1),
        });
        let lines = parse_dump(&r.dump_jsonl());
        assert_eq!(
            lines[0].get("algorithm").unwrap().as_str(),
            Some("x".repeat(ALGO_CAP).as_str())
        );
    }

    #[test]
    fn post_mortem_file_has_header_context_and_ring() {
        let r = Arc::new(small(64, 1));
        r.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 5,
            m: 4,
            run: RunId(0xdead),
        });
        let path =
            std::env::temp_dir().join(format!("fdiam-flight-test-pm-{}.jsonl", std::process::id()));
        write_post_mortem(&r, &path, "boom", "here.rs:1", &|| {
            vec![JsonObject::new()
                .str("type", "in_flight_run")
                .str("run", "000000000000dead")
                .finish()]
        })
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines = parse_dump(&text);
        assert_eq!(lines[0].get("type").unwrap().as_str(), Some("post_mortem"));
        assert_eq!(lines[0].get("message").unwrap().as_str(), Some("boom"));
        assert_eq!(
            lines[1].get("type").unwrap().as_str(),
            Some("in_flight_run")
        );
        assert_eq!(lines[2].get("type").unwrap().as_str(), Some("run_start"));
    }

    #[test]
    fn panic_hook_writes_registered_post_mortem() {
        let r = Arc::new(small(64, 1));
        r.event(&Event::RunStart {
            algorithm: "fdiam",
            n: 2,
            m: 1,
            run: RunId(0xbeef),
        });
        let path = std::env::temp_dir().join(format!(
            "fdiam-flight-test-hook-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let guard = register_post_mortem(&r, &path, Vec::new);
        let handle = std::thread::Builder::new()
            .name("flight-panic-test".into())
            .spawn(|| panic!("induced test panic"))
            .unwrap();
        assert!(handle.join().is_err());
        drop(guard);
        let text = std::fs::read_to_string(&path).expect("post-mortem written by hook");
        let _ = std::fs::remove_file(&path);
        let lines = parse_dump(&text);
        assert_eq!(lines[0].get("type").unwrap().as_str(), Some("post_mortem"));
        assert_eq!(
            lines[0].get("message").unwrap().as_str(),
            Some("induced test panic")
        );
        assert_eq!(
            lines[0].get("thread").unwrap().as_str(),
            Some("flight-panic-test")
        );
        assert!(text.contains("\"run\":\"000000000000beef\""));
        // After the guard dropped, a panic no longer rewrites the file.
        let h2 = std::thread::spawn(|| panic!("second panic"));
        assert!(h2.join().is_err());
        assert!(!path.exists());
    }
}
