//! Atomic counters, duration histograms, and the observer that feeds
//! them from the event stream.

use crate::event::{Event, Phase};
use crate::observer::Observer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge holding an `f64` (stored as raw bits in an
/// `AtomicU64`). Covers both sampled values (queue depth, cache bytes)
/// and up/down tracking via [`Gauge::inc`]/[`Gauge::dec`].
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    pub fn inc(&self) {
        self.add(1.0);
    }

    pub fn dec(&self) {
        self.add(-1.0);
    }
}

/// Number of log₂ buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 0 also holds sub-nanosecond
/// values and bucket 63 everything ≥ 2^63 ns.
pub(crate) const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of durations, with exact count,
/// sum, and max.
pub struct DurationHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl DurationHistogram {
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn record_nanos(&self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros() as usize).saturating_sub(1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> Duration {
        match self
            .sum_nanos
            .load(Ordering::Relaxed)
            .checked_div(self.count())
        {
            Some(nanos) => Duration::from_nanos(nanos),
            None => Duration::ZERO,
        }
    }

    /// Per-bucket counts (bucket `i` holds `[2^i, 2^(i+1))` ns; bucket
    /// 0 also holds 0 ns, bucket 63 everything ≥ 2^63 ns).
    pub fn bucket_snapshot(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Exclusive upper edge of bucket `i` in nanoseconds: `2^(i+1)`,
    /// saturating to `u64::MAX` for the last bucket (which is
    /// unbounded above).
    pub fn bucket_upper_nanos(i: usize) -> u64 {
        if i >= BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Raw sum in nanoseconds (exact, unlike the bucketed counts).
    pub fn sum_nanos(&self) -> u64 {
        self.sum_nanos.load(Ordering::Relaxed)
    }

    /// Upper edge (in nanoseconds) of the bucket containing quantile
    /// `q` ∈ [0, 1] — a conservative approximation within 2× of the
    /// true value.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }
}

/// A registry of named counters and duration histograms.
///
/// Names are `&'static str` (all instrumentation sites use literals);
/// lookups lock briefly but hot paths cache the returned [`Arc`]s.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<DurationHistogram>>>,
    /// Info-style metrics: rendered as `name{k1="v1",k2="v2"} 1` with
    /// the latest value set replacing the previous one (cardinality 1).
    /// Used to expose the most recent run id and the build provenance
    /// as scrapeable labels.
    labels: Mutex<BTreeMap<&'static str, Vec<(&'static str, String)>>>,
    /// Counter families keyed by one label (e.g. flight captures by
    /// `reason`). Label values are static, so cardinality is bounded by
    /// the instrumentation sites.
    labeled_counters: Mutex<BTreeMap<&'static str, LabeledCounterFamily>>,
}

struct LabeledCounterFamily {
    key: &'static str,
    by_value: BTreeMap<&'static str, Arc<Counter>>,
}

/// One labeled-counter family's snapshot: `(family, key, [(value, count), …])`.
pub type LabeledCounterSnapshot = (&'static str, &'static str, Vec<(&'static str, u64)>);

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if absent) the counter called `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Returns (creating if absent) the histogram called `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<DurationHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(DurationHistogram::default())),
        )
    }

    /// Returns (creating if absent) the gauge called `name`.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(
            self.gauges
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Sets (replacing any previous value) an info-style metric
    /// rendered as `name{key="value"} 1`.
    pub fn set_label(&self, name: &'static str, key: &'static str, value: &str) {
        self.set_info(name, &[(key, value)]);
    }

    /// Sets (replacing any previous set) a multi-label info metric
    /// rendered as `name{k1="v1",k2="v2",...} 1` — the conventional
    /// `*_info` gauge shape (e.g. `build_info{rev,rustc,profile}`).
    pub fn set_info(&self, name: &'static str, pairs: &[(&'static str, &str)]) {
        let pairs: Vec<(&'static str, String)> =
            pairs.iter().map(|(k, v)| (*k, v.to_string())).collect();
        self.labels.lock().unwrap().insert(name, pairs);
    }

    /// Returns (creating if absent) the counter of the labeled family
    /// `name` for `key="value"`, rendered as
    /// `name{key="value"} n`. The label key is fixed per family; the
    /// first caller's `key` wins.
    pub fn labeled_counter(
        &self,
        name: &'static str,
        key: &'static str,
        value: &'static str,
    ) -> Arc<Counter> {
        let mut families = self.labeled_counters.lock().unwrap();
        let family = families
            .entry(name)
            .or_insert_with(|| LabeledCounterFamily {
                key,
                by_value: BTreeMap::new(),
            });
        Arc::clone(
            family
                .by_value
                .entry(value)
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Counter values, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect()
    }

    /// Gauge values, sorted by name.
    pub fn gauge_snapshot(&self) -> Vec<(&'static str, f64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (*name, g.get()))
            .collect()
    }

    /// Histogram handles, sorted by name.
    pub fn histogram_snapshot(&self) -> Vec<(&'static str, Arc<DurationHistogram>)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (*name, Arc::clone(h)))
            .collect()
    }

    /// Info-label values (every key/value pair per name), sorted by name.
    pub fn label_snapshot(&self) -> Vec<(&'static str, Vec<(&'static str, String)>)> {
        self.labels
            .lock()
            .unwrap()
            .iter()
            .map(|(name, pairs)| (*name, pairs.clone()))
            .collect()
    }

    /// Labeled-counter values: `(family, key, [(value, count), ...])`,
    /// sorted by family name then label value.
    pub fn labeled_counter_snapshot(&self) -> Vec<LabeledCounterSnapshot> {
        self.labeled_counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, family)| {
                (
                    *name,
                    family.key,
                    family
                        .by_value
                        .iter()
                        .map(|(value, c)| (*value, c.get()))
                        .collect(),
                )
            })
            .collect()
    }

    /// Human-readable summary of every metric, one per line.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            out.push_str(&format!("{name:<32} {value}\n"));
        }
        for (name, key, values) in self.labeled_counter_snapshot() {
            for (value, count) in values {
                let labeled = format!("{name}{{{key}={value}}}");
                out.push_str(&format!("{labeled:<32} {count}\n"));
            }
        }
        for (name, value) in self.gauge_snapshot() {
            out.push_str(&format!("{name:<32} {value}\n"));
        }
        let histos = self.histograms.lock().unwrap();
        for (name, h) in histos.iter() {
            if h.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<32} count {} | total {:.3}s | mean {:.3}ms | p99 ≤ {:.3}ms | max {:.3}ms\n",
                name,
                h.count(),
                h.sum().as_secs_f64(),
                h.mean().as_secs_f64() * 1e3,
                h.quantile_upper_bound(0.99) as f64 / 1e6,
                h.max().as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Observer aggregating the event stream into a [`MetricsRegistry`].
///
/// Counter names (all prefixed to avoid collisions with user metrics):
///
/// | name | meaning |
/// |---|---|
/// | `bfs.traversals` | eccentricity BFS calls completed |
/// | `bfs.levels` | BFS expansions performed |
/// | `bfs.bottom_up_levels` | expansions that ran bottom-up |
/// | `bfs.edges_scanned` | edges examined across all expansions |
/// | `bfs.direction_switches` | top-down↔bottom-up transitions |
/// | `bfs.epoch_rollovers` | visit-epoch counter wraps |
/// | `driver.bound_updates` | diameter lower-bound improvements |
/// | `driver.winnow_calls` | winnow growths (Table 3 traversals) |
/// | `driver.eliminate_calls` | Eliminate invocations |
/// | `driver.eliminated_vertices` | vertices removed by Eliminate |
/// | `driver.chains_processed` | degree-1 chains handled |
///
/// Gauges (set from the end-of-run [`Event::WorkerLoad`] summary):
/// `bfs.load.workers`, `bfs.load.imbalance` (max/mean busy-time ratio),
/// `bfs.load.max_busy_nanos`, `bfs.load.mean_busy_nanos`; plus the
/// counter `bfs.load.edges` (edges scanned by accounted parallel
/// expansions).
///
/// Histograms: `phase.<name>.duration` for every [`Phase`] span and
/// `run.duration` for whole runs.
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    traversals: Arc<Counter>,
    levels: Arc<Counter>,
    bottom_up_levels: Arc<Counter>,
    edges: Arc<Counter>,
    switches: Arc<Counter>,
    rollovers: Arc<Counter>,
    bound_updates: Arc<Counter>,
    winnow_calls: Arc<Counter>,
    eliminate_calls: Arc<Counter>,
    eliminated: Arc<Counter>,
    chains: Arc<Counter>,
    load_workers: Arc<Gauge>,
    load_imbalance: Arc<Gauge>,
    load_max_busy: Arc<Gauge>,
    load_mean_busy: Arc<Gauge>,
    load_edges: Arc<Counter>,
    bounds_gap: Arc<Gauge>,
    bounds_updates: Arc<Counter>,
    phase_durations: [Arc<DurationHistogram>; Phase::ALL.len()],
    run_duration: Arc<DurationHistogram>,
}

impl MetricsObserver {
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let phase_durations = std::array::from_fn(|i| {
            registry.histogram(match Phase::ALL[i] {
                Phase::TwoSweep => "phase.two_sweep.duration",
                Phase::Winnow => "phase.winnow.duration",
                Phase::Chain => "phase.chain.duration",
                Phase::Eliminate => "phase.eliminate.duration",
                Phase::EccBfs => "phase.ecc_bfs.duration",
            })
        });
        Self {
            traversals: registry.counter("bfs.traversals"),
            levels: registry.counter("bfs.levels"),
            bottom_up_levels: registry.counter("bfs.bottom_up_levels"),
            edges: registry.counter("bfs.edges_scanned"),
            switches: registry.counter("bfs.direction_switches"),
            rollovers: registry.counter("bfs.epoch_rollovers"),
            bound_updates: registry.counter("driver.bound_updates"),
            winnow_calls: registry.counter("driver.winnow_calls"),
            eliminate_calls: registry.counter("driver.eliminate_calls"),
            eliminated: registry.counter("driver.eliminated_vertices"),
            chains: registry.counter("driver.chains_processed"),
            load_workers: registry.gauge("bfs.load.workers"),
            load_imbalance: registry.gauge("bfs.load.imbalance"),
            load_max_busy: registry.gauge("bfs.load.max_busy_nanos"),
            load_mean_busy: registry.gauge("bfs.load.mean_busy_nanos"),
            load_edges: registry.counter("bfs.load.edges"),
            bounds_gap: registry.gauge("run.bounds_gap"),
            bounds_updates: registry.counter("driver.bounds_updates"),
            run_duration: registry.histogram("run.duration"),
            phase_durations,
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Observer for MetricsObserver {
    fn event(&self, e: &Event<'_>) {
        match *e {
            Event::BfsEnd { .. } => self.traversals.inc(),
            Event::BfsLevel {
                edges_scanned,
                bottom_up,
                ..
            } => {
                self.levels.inc();
                self.edges.add(edges_scanned);
                if bottom_up {
                    self.bottom_up_levels.inc();
                }
            }
            Event::DirectionSwitch { .. } => self.switches.inc(),
            Event::EpochRollover { .. } => self.rollovers.inc(),
            Event::BoundUpdate { .. } => self.bound_updates.inc(),
            Event::BoundsUpdate { snapshot } => {
                self.bounds_updates.inc();
                self.bounds_gap.set(snapshot.gap() as f64);
            }
            Event::WinnowGrown { .. } => self.winnow_calls.inc(),
            Event::EliminateRun { removed, .. } => {
                self.eliminate_calls.inc();
                self.eliminated.add(removed as u64);
            }
            Event::ChainsProcessed { count } => self.chains.add(count as u64),
            Event::WorkerLoad {
                workers,
                total_edges,
                max_busy_nanos,
                mean_busy_nanos,
                imbalance,
            } => {
                self.load_workers.set(workers as f64);
                self.load_imbalance.set(imbalance);
                self.load_max_busy.set(max_busy_nanos as f64);
                self.load_mean_busy.set(mean_busy_nanos as f64);
                self.load_edges.add(total_edges);
            }
            Event::PhaseEnd { phase, nanos, .. } => {
                let i = Phase::ALL.iter().position(|&p| p == phase).unwrap();
                self.phase_durations[i].record_nanos(nanos);
            }
            Event::RunEnd { nanos, .. } => self.run_duration.record_nanos(nanos),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_stats() {
        let h = DurationHistogram::default();
        for ms in [1u64, 2, 4, 8] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), Duration::from_millis(15));
        assert_eq!(h.max(), Duration::from_millis(8));
        assert!(h.mean() >= Duration::from_millis(3));
        // p100 upper bound must cover the max
        assert!(h.quantile_upper_bound(1.0) >= 8_000_000);
        // p25 bound must not exceed the largest sample's bucket edge
        assert!(h.quantile_upper_bound(0.25) <= 2_097_152);
    }

    #[test]
    fn empty_histogram() {
        let h = DurationHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = DurationHistogram::default();
        h.record_nanos(0);
        h.record_nanos(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_nanos(1));
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_snapshot(), vec![("x", 1)]);
    }

    #[test]
    fn observer_routes_events() {
        use crate::ids::SpanId;
        let reg = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(Arc::clone(&reg));
        obs.event(&Event::BfsEnd {
            source: 0,
            eccentricity: 3,
            visited: 10,
            span: SpanId::NONE,
        });
        obs.event(&Event::BfsLevel {
            level: 1,
            frontier: 5,
            edges_scanned: 12,
            bottom_up: true,
            span: SpanId::NONE,
        });
        obs.event(&Event::DirectionSwitch {
            level: 2,
            bottom_up: true,
            span: SpanId::NONE,
        });
        obs.event(&Event::EliminateRun {
            removed: 7,
            extension: false,
        });
        obs.event(&Event::PhaseEnd {
            phase: Phase::Winnow,
            nanos: 1000,
            span: SpanId::NONE,
        });
        obs.event(&Event::WorkerLoad {
            workers: 4,
            total_edges: 123,
            max_busy_nanos: 80,
            mean_busy_nanos: 40,
            imbalance: 2.0,
        });
        assert_eq!(reg.counter("bfs.traversals").get(), 1);
        assert_eq!(reg.counter("bfs.edges_scanned").get(), 12);
        assert_eq!(reg.counter("bfs.bottom_up_levels").get(), 1);
        assert_eq!(reg.counter("bfs.direction_switches").get(), 1);
        assert_eq!(reg.counter("driver.eliminated_vertices").get(), 7);
        assert_eq!(reg.counter("bfs.load.edges").get(), 123);
        assert_eq!(reg.gauge("bfs.load.imbalance").get(), 2.0);
        assert_eq!(reg.gauge("bfs.load.workers").get(), 4.0);
        assert_eq!(reg.histogram("phase.winnow.duration").count(), 1);
        let summary = reg.render_summary();
        assert!(summary.contains("bfs.direction_switches"));
        assert!(summary.contains("bfs.load.imbalance"));
        assert!(summary.contains("phase.winnow.duration"));
    }

    #[test]
    fn gauge_set_add_inc_dec() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.add(1.5);
        assert_eq!(g.get(), 4.0);
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 3.0);
        g.set(-0.0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn registry_labels_replace_previous_value() {
        let r = MetricsRegistry::new();
        r.set_label("serve.last_run_info", "run_id", "aaaa");
        r.set_label("serve.last_run_info", "run_id", "bbbb");
        assert_eq!(
            r.label_snapshot(),
            vec![("serve.last_run_info", vec![("run_id", "bbbb".to_string())])]
        );
    }

    #[test]
    fn multi_label_info_keeps_pair_order() {
        let r = MetricsRegistry::new();
        r.set_info(
            "build_info",
            &[("rev", "abc"), ("rustc", "1.85"), ("profile", "release")],
        );
        r.set_info(
            "build_info",
            &[("rev", "def"), ("rustc", "1.85"), ("profile", "release")],
        );
        let snap = r.label_snapshot();
        assert_eq!(snap.len(), 1);
        let (name, pairs) = &snap[0];
        assert_eq!(*name, "build_info");
        assert_eq!(
            pairs
                .iter()
                .map(|(k, v)| (*k, v.as_str()))
                .collect::<Vec<_>>(),
            vec![("rev", "def"), ("rustc", "1.85"), ("profile", "release")]
        );
    }

    #[test]
    fn labeled_counters_track_per_value_counts() {
        let r = MetricsRegistry::new();
        r.labeled_counter("flight.captures", "reason", "slow")
            .add(2);
        r.labeled_counter("flight.captures", "reason", "deadline")
            .inc();
        // Re-fetching the same handle accumulates, never resets.
        r.labeled_counter("flight.captures", "reason", "slow").inc();
        assert_eq!(
            r.labeled_counter_snapshot(),
            vec![(
                "flight.captures",
                "reason",
                vec![("deadline", 1), ("slow", 3)]
            )]
        );
        let summary = r.render_summary();
        assert!(summary.contains("flight.captures{reason=slow}"));
    }

    /// Satellite: explicit `record_nanos` boundary behavior. Bucket `i`
    /// holds `[2^i, 2^(i+1))` ns, with 0 folded into bucket 0 and
    /// everything ≥ 2^63 (including `u64::MAX`) in bucket 63.
    #[test]
    fn record_nanos_bucket_boundaries() {
        let bucket_of = |nanos: u64| -> usize {
            let h = DurationHistogram::default();
            h.record_nanos(nanos);
            let b = h.bucket_snapshot();
            let i = b.iter().position(|&c| c == 1).unwrap();
            assert_eq!(b.iter().sum::<u64>(), 1, "exactly one bucket incremented");
            i
        };
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        // Exact powers of two open their own bucket...
        for k in 1..64 {
            assert_eq!(bucket_of(1u64 << k), k, "2^{k} must land in bucket {k}");
        }
        // ...and the value just below each power stays one bucket down.
        for k in 2..64 {
            assert_eq!(bucket_of((1u64 << k) - 1), k - 1);
        }
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    /// Satellite: the log₂→`le` conversion used by the Prometheus
    /// exposition — every recorded value must satisfy
    /// `value ≤ bucket_upper_nanos(bucket)` and (for nonzero values)
    /// exceed the previous bucket's edge.
    #[test]
    fn bucket_upper_edges_cover_contents() {
        assert_eq!(DurationHistogram::bucket_upper_nanos(0), 2);
        assert_eq!(DurationHistogram::bucket_upper_nanos(1), 4);
        assert_eq!(DurationHistogram::bucket_upper_nanos(62), 1u64 << 63);
        assert_eq!(DurationHistogram::bucket_upper_nanos(63), u64::MAX);
        for nanos in [0u64, 1, 2, 3, 1000, 1 << 20, (1 << 40) + 7, u64::MAX] {
            let h = DurationHistogram::default();
            h.record_nanos(nanos);
            let i = h.bucket_snapshot().iter().position(|&c| c == 1).unwrap();
            assert!(nanos <= DurationHistogram::bucket_upper_nanos(i));
            if i > 0 {
                assert!(nanos >= DurationHistogram::bucket_upper_nanos(i - 1));
            }
        }
    }

    #[test]
    fn quantile_upper_bound_brackets_true_quantile() {
        let h = DurationHistogram::default();
        // 90 fast samples (~1µs) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record_nanos(1_000);
        }
        for _ in 0..10 {
            h.record_nanos(1_000_000);
        }
        // p50 must be bounded by the fast bucket's edge (≤ 2^10 = 1024...
        // 1000 lands in bucket 9, edge 1024).
        assert_eq!(h.quantile_upper_bound(0.5), 1024);
        // p99 must cover the slow samples but stay within 2× of 1ms.
        let p99 = h.quantile_upper_bound(0.99);
        assert!((1_000_000..=2_097_152).contains(&p99), "p99 = {p99}");
        // q = 0 still returns the first nonempty bucket's edge.
        assert_eq!(h.quantile_upper_bound(0.0), 1024);
        assert!(h.quantile_upper_bound(1.0) >= 1_000_000);
        // A histogram holding u64::MAX reports u64::MAX.
        let h2 = DurationHistogram::default();
        h2.record_nanos(u64::MAX);
        assert_eq!(h2.quantile_upper_bound(1.0), u64::MAX);
    }
}
