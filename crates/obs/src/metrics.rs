//! Atomic counters, duration histograms, and the observer that feeds
//! them from the event stream.

use crate::event::{Event, Phase};
use crate::observer::Observer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 0 also holds sub-nanosecond
/// values and bucket 63 everything ≥ 2^63 ns.
const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of durations, with exact count,
/// sum, and max.
pub struct DurationHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for DurationHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }
}

impl DurationHistogram {
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn record_nanos(&self, nanos: u64) {
        let bucket = (64 - nanos.leading_zeros() as usize).saturating_sub(1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.load(Ordering::Relaxed))
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos.load(Ordering::Relaxed))
    }

    pub fn mean(&self) -> Duration {
        match self
            .sum_nanos
            .load(Ordering::Relaxed)
            .checked_div(self.count())
        {
            Some(nanos) => Duration::from_nanos(nanos),
            None => Duration::ZERO,
        }
    }

    /// Upper edge (in nanoseconds) of the bucket containing quantile
    /// `q` ∈ [0, 1] — a conservative approximation within 2× of the
    /// true value.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
            }
        }
        u64::MAX
    }
}

/// A registry of named counters and duration histograms.
///
/// Names are `&'static str` (all instrumentation sites use literals);
/// lookups lock briefly but hot paths cache the returned [`Arc`]s.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<DurationHistogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if absent) the counter called `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(
            self.counters
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Returns (creating if absent) the histogram called `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<DurationHistogram> {
        Arc::clone(
            self.histograms
                .lock()
                .unwrap()
                .entry(name)
                .or_insert_with(|| Arc::new(DurationHistogram::default())),
        )
    }

    /// Counter values, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (*name, c.get()))
            .collect()
    }

    /// Human-readable summary of every metric, one per line.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            out.push_str(&format!("{name:<32} {value}\n"));
        }
        let histos = self.histograms.lock().unwrap();
        for (name, h) in histos.iter() {
            if h.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<32} count {} | total {:.3}s | mean {:.3}ms | p99 ≤ {:.3}ms | max {:.3}ms\n",
                name,
                h.count(),
                h.sum().as_secs_f64(),
                h.mean().as_secs_f64() * 1e3,
                h.quantile_upper_bound(0.99) as f64 / 1e6,
                h.max().as_secs_f64() * 1e3,
            ));
        }
        out
    }
}

/// Observer aggregating the event stream into a [`MetricsRegistry`].
///
/// Counter names (all prefixed to avoid collisions with user metrics):
///
/// | name | meaning |
/// |---|---|
/// | `bfs.traversals` | eccentricity BFS calls completed |
/// | `bfs.levels` | BFS expansions performed |
/// | `bfs.bottom_up_levels` | expansions that ran bottom-up |
/// | `bfs.edges_scanned` | edges examined across all expansions |
/// | `bfs.direction_switches` | top-down↔bottom-up transitions |
/// | `bfs.epoch_rollovers` | visit-epoch counter wraps |
/// | `driver.bound_updates` | diameter lower-bound improvements |
/// | `driver.winnow_calls` | winnow growths (Table 3 traversals) |
/// | `driver.eliminate_calls` | Eliminate invocations |
/// | `driver.eliminated_vertices` | vertices removed by Eliminate |
/// | `driver.chains_processed` | degree-1 chains handled |
///
/// Histograms: `phase.<name>.duration` for every [`Phase`] span and
/// `run.duration` for whole runs.
pub struct MetricsObserver {
    registry: Arc<MetricsRegistry>,
    traversals: Arc<Counter>,
    levels: Arc<Counter>,
    bottom_up_levels: Arc<Counter>,
    edges: Arc<Counter>,
    switches: Arc<Counter>,
    rollovers: Arc<Counter>,
    bound_updates: Arc<Counter>,
    winnow_calls: Arc<Counter>,
    eliminate_calls: Arc<Counter>,
    eliminated: Arc<Counter>,
    chains: Arc<Counter>,
    phase_durations: [Arc<DurationHistogram>; Phase::ALL.len()],
    run_duration: Arc<DurationHistogram>,
}

impl MetricsObserver {
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        let phase_durations = std::array::from_fn(|i| {
            registry.histogram(match Phase::ALL[i] {
                Phase::TwoSweep => "phase.two_sweep.duration",
                Phase::Winnow => "phase.winnow.duration",
                Phase::Chain => "phase.chain.duration",
                Phase::Eliminate => "phase.eliminate.duration",
                Phase::EccBfs => "phase.ecc_bfs.duration",
            })
        });
        Self {
            traversals: registry.counter("bfs.traversals"),
            levels: registry.counter("bfs.levels"),
            bottom_up_levels: registry.counter("bfs.bottom_up_levels"),
            edges: registry.counter("bfs.edges_scanned"),
            switches: registry.counter("bfs.direction_switches"),
            rollovers: registry.counter("bfs.epoch_rollovers"),
            bound_updates: registry.counter("driver.bound_updates"),
            winnow_calls: registry.counter("driver.winnow_calls"),
            eliminate_calls: registry.counter("driver.eliminate_calls"),
            eliminated: registry.counter("driver.eliminated_vertices"),
            chains: registry.counter("driver.chains_processed"),
            run_duration: registry.histogram("run.duration"),
            phase_durations,
            registry,
        }
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl Observer for MetricsObserver {
    fn event(&self, e: &Event<'_>) {
        match *e {
            Event::BfsEnd { .. } => self.traversals.inc(),
            Event::BfsLevel {
                edges_scanned,
                bottom_up,
                ..
            } => {
                self.levels.inc();
                self.edges.add(edges_scanned);
                if bottom_up {
                    self.bottom_up_levels.inc();
                }
            }
            Event::DirectionSwitch { .. } => self.switches.inc(),
            Event::EpochRollover { .. } => self.rollovers.inc(),
            Event::BoundUpdate { .. } => self.bound_updates.inc(),
            Event::WinnowGrown { .. } => self.winnow_calls.inc(),
            Event::EliminateRun { removed, .. } => {
                self.eliminate_calls.inc();
                self.eliminated.add(removed as u64);
            }
            Event::ChainsProcessed { count } => self.chains.add(count as u64),
            Event::PhaseEnd { phase, nanos } => {
                let i = Phase::ALL.iter().position(|&p| p == phase).unwrap();
                self.phase_durations[i].record_nanos(nanos);
            }
            Event::RunEnd { nanos, .. } => self.run_duration.record_nanos(nanos),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_stats() {
        let h = DurationHistogram::default();
        for ms in [1u64, 2, 4, 8] {
            h.record(Duration::from_millis(ms));
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), Duration::from_millis(15));
        assert_eq!(h.max(), Duration::from_millis(8));
        assert!(h.mean() >= Duration::from_millis(3));
        // p100 upper bound must cover the max
        assert!(h.quantile_upper_bound(1.0) >= 8_000_000);
        // p25 bound must not exceed the largest sample's bucket edge
        assert!(h.quantile_upper_bound(0.25) <= 2_097_152);
    }

    #[test]
    fn empty_histogram() {
        let h = DurationHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn zero_duration_lands_in_bucket_zero() {
        let h = DurationHistogram::default();
        h.record_nanos(0);
        h.record_nanos(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Duration::from_nanos(1));
    }

    #[test]
    fn registry_deduplicates_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter_snapshot(), vec![("x", 1)]);
    }

    #[test]
    fn observer_routes_events() {
        let reg = Arc::new(MetricsRegistry::new());
        let obs = MetricsObserver::new(Arc::clone(&reg));
        obs.event(&Event::BfsEnd {
            source: 0,
            eccentricity: 3,
            visited: 10,
        });
        obs.event(&Event::BfsLevel {
            level: 1,
            frontier: 5,
            edges_scanned: 12,
            bottom_up: true,
        });
        obs.event(&Event::DirectionSwitch {
            level: 2,
            bottom_up: true,
        });
        obs.event(&Event::EliminateRun {
            removed: 7,
            extension: false,
        });
        obs.event(&Event::PhaseEnd {
            phase: Phase::Winnow,
            nanos: 1000,
        });
        assert_eq!(reg.counter("bfs.traversals").get(), 1);
        assert_eq!(reg.counter("bfs.edges_scanned").get(), 12);
        assert_eq!(reg.counter("bfs.bottom_up_levels").get(), 1);
        assert_eq!(reg.counter("bfs.direction_switches").get(), 1);
        assert_eq!(reg.counter("driver.eliminated_vertices").get(), 7);
        assert_eq!(reg.histogram("phase.winnow.duration").count(), 1);
        let summary = reg.render_summary();
        assert!(summary.contains("bfs.direction_switches"));
        assert!(summary.contains("phase.winnow.duration"));
    }
}
