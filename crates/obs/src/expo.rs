//! Prometheus text exposition (format 0.0.4) for [`MetricsRegistry`],
//! plus a small in-tree exposition parser/linter used by tests and CI
//! to validate what `/metrics` serves.
//!
//! Mapping from registry names to exposition names: dots become
//! underscores and everything gets an `fdiam_` prefix; counters gain
//! the conventional `_total` suffix and duration histograms are
//! exported in seconds as `<name>_seconds` with explicit cumulative
//! `le` bucket boundaries derived from the log₂ buckets (the upper
//! edge of log₂ bucket `i` is `2^(i+1)` ns).

use crate::metrics::{DurationHistogram, MetricsRegistry, BUCKETS};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The `Content-Type` a Prometheus scraper expects for this format.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Converts a registry metric name (`bfs.edges_scanned`) to a valid
/// exposition name (`fdiam_bfs_edges_scanned`).
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("fdiam_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, exposed: &str, h: &DurationHistogram) {
    let _ = writeln!(out, "# HELP {exposed} F-Diam duration histogram (seconds).");
    let _ = writeln!(out, "# TYPE {exposed} histogram");
    let buckets = h.bucket_snapshot();
    let last_nonempty = buckets.iter().rposition(|&c| c != 0);
    let mut cumulative = 0u64;
    if let Some(last) = last_nonempty {
        // Finite `le` edges up to the highest occupied log₂ bucket; the
        // rest is carried by +Inf (sparse upper buckets are valid
        // exposition, and this keeps ~60 empty lines out of every
        // scrape). Bucket 63 has no finite upper edge, so cap at 62.
        for (i, &c) in buckets.iter().enumerate().take(last.min(BUCKETS - 2) + 1) {
            cumulative += c;
            let le = DurationHistogram::bucket_upper_nanos(i) as f64 / 1e9;
            let _ = writeln!(
                out,
                "{exposed}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(le)
            );
        }
    }
    let count = h.count();
    let _ = writeln!(out, "{exposed}_bucket{{le=\"+Inf\"}} {count}");
    let _ = writeln!(out, "{exposed}_sum {}", fmt_f64(h.sum_nanos() as f64 / 1e9));
    let _ = writeln!(out, "{exposed}_count {count}");
}

impl MetricsRegistry {
    /// Renders every counter, gauge, info label, and histogram in
    /// Prometheus text exposition format 0.0.4. Serve it with
    /// [`PROMETHEUS_CONTENT_TYPE`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.counter_snapshot() {
            let exposed = mangle(name) + "_total";
            let _ = writeln!(out, "# HELP {exposed} F-Diam counter `{name}`.");
            let _ = writeln!(out, "# TYPE {exposed} counter");
            let _ = writeln!(out, "{exposed} {value}");
        }
        for (name, key, values) in self.labeled_counter_snapshot() {
            let exposed = mangle(name) + "_total";
            let _ = writeln!(out, "# HELP {exposed} F-Diam counter `{name}` by {key}.");
            let _ = writeln!(out, "# TYPE {exposed} counter");
            for (value, count) in values {
                let _ = writeln!(
                    out,
                    "{exposed}{{{key}=\"{}\"}} {count}",
                    escape_label(value)
                );
            }
        }
        for (name, value) in self.gauge_snapshot() {
            let exposed = mangle(name);
            let _ = writeln!(out, "# HELP {exposed} F-Diam gauge `{name}`.");
            let _ = writeln!(out, "# TYPE {exposed} gauge");
            let _ = writeln!(out, "{exposed} {}", fmt_f64(value));
        }
        for (name, pairs) in self.label_snapshot() {
            let exposed = mangle(name);
            let _ = writeln!(out, "# HELP {exposed} F-Diam info label `{name}`.");
            let _ = writeln!(out, "# TYPE {exposed} gauge");
            let labels = pairs
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(out, "{exposed}{{{labels}}} 1");
        }
        for (name, h) in self.histogram_snapshot() {
            render_histogram(&mut out, &(mangle(name) + "_seconds"), &h);
        }
        out
    }
}

/// What the linter saw in a healthy exposition.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct LintReport {
    pub samples: usize,
    pub counters: usize,
    pub gauges: usize,
    pub histograms: usize,
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn parse_value(s: &str) -> Option<f64> {
    match s {
        "+Inf" | "Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        _ => s.parse().ok(),
    }
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    line_no: usize,
}

/// Splits `name{labels} value` (labels optional). Returns `None` on a
/// malformed line; label escape sequences are decoded.
fn parse_sample(line: &str, line_no: usize, errors: &mut Vec<String>) -> Option<Sample> {
    let bad = |errors: &mut Vec<String>, why: &str| {
        errors.push(format!("line {line_no}: {why}: {line:?}"));
        None
    };
    let (name_part, rest) = match line.find(['{', ' ', '\t']) {
        Some(i) => (&line[..i], &line[i..]),
        None => return bad(errors, "sample has no value"),
    };
    if !valid_metric_name(name_part) {
        return bad(errors, "invalid metric name");
    }
    let mut labels = Vec::new();
    let rest = if let Some(body) = rest.strip_prefix('{') {
        let close = match body.find('}') {
            Some(i) => i,
            None => return bad(errors, "unclosed label set"),
        };
        let label_str = &body[..close];
        if !label_str.is_empty() {
            for part in label_str.split(',') {
                let (k, v) = match part.split_once('=') {
                    Some(kv) => kv,
                    None => return bad(errors, "label without '='"),
                };
                if !valid_label_name(k) {
                    return bad(errors, "invalid label name");
                }
                let v = v.trim();
                if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
                    return bad(errors, "label value not quoted");
                }
                let inner = &v[1..v.len() - 1];
                let mut decoded = String::new();
                let mut chars = inner.chars();
                while let Some(c) = chars.next() {
                    if c == '\\' {
                        match chars.next() {
                            Some('\\') => decoded.push('\\'),
                            Some('"') => decoded.push('"'),
                            Some('n') => decoded.push('\n'),
                            _ => return bad(errors, "bad escape in label value"),
                        }
                    } else if c == '"' {
                        return bad(errors, "unescaped quote in label value");
                    } else {
                        decoded.push(c);
                    }
                }
                labels.push((k.to_string(), decoded));
            }
        }
        &body[close + 1..]
    } else {
        rest
    };
    let value_str = rest.trim();
    // A timestamp after the value is legal in 0.0.4; we don't emit one,
    // so only accept a bare value here.
    let value = match parse_value(value_str) {
        Some(v) => v,
        None => return bad(errors, "unparsable sample value"),
    };
    Some(Sample {
        name: name_part.to_string(),
        labels,
        value,
        line_no,
    })
}

/// Validates a Prometheus 0.0.4 text exposition: metric/label name
/// charsets, `TYPE` declared before (and at most once for) each
/// family's samples, families not interleaved, no duplicate samples,
/// counters suffixed `_total`, and histogram completeness — cumulative
/// monotone `le` buckets, a `+Inf` bucket, and `_sum`/`_count` present
/// with `+Inf == _count`.
///
/// Returns the tally of what was seen, or every violation found.
pub fn lint(text: &str) -> Result<LintReport, Vec<String>> {
    let mut errors = Vec::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    let mut family_of_sample: Vec<String> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.splitn(2, ' ');
                let name = it.next().unwrap_or("");
                let ty = it.next().unwrap_or("").trim();
                if !valid_metric_name(name) {
                    errors.push(format!("line {line_no}: TYPE for invalid name {name:?}"));
                    continue;
                }
                if !matches!(
                    ty,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    errors.push(format!("line {line_no}: unknown TYPE {ty:?} for {name}"));
                    continue;
                }
                if types.insert(name.to_string(), ty.to_string()).is_some() {
                    errors.push(format!("line {line_no}: duplicate TYPE for {name}"));
                }
            }
            // HELP and free comments need no validation beyond UTF-8.
            continue;
        }
        if let Some(s) = parse_sample(line, line_no, &mut errors) {
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| {
                    let base = s.name.strip_suffix(suffix)?;
                    (types.get(base).map(String::as_str) == Some("histogram"))
                        .then(|| base.to_string())
                })
                .unwrap_or_else(|| s.name.clone());
            family_of_sample.push(family);
            samples.push(s);
        }
    }

    // TYPE must precede samples; families must not interleave.
    let mut seen_families: Vec<String> = Vec::new();
    for (s, family) in samples.iter().zip(&family_of_sample) {
        match seen_families.last() {
            Some(last) if last == family => {}
            _ => {
                if seen_families.contains(family) {
                    errors.push(format!(
                        "line {}: samples of family {family} are interleaved with another family",
                        s.line_no
                    ));
                } else {
                    seen_families.push(family.clone());
                }
            }
        }
        if let Some(ty) = types.get(family) {
            if ty == "counter" && !s.name.ends_with("_total") {
                errors.push(format!(
                    "line {}: counter sample {} lacks the _total suffix",
                    s.line_no, s.name
                ));
            }
        }
    }

    // Duplicate sample detection (same name + label set).
    let mut seen_samples = BTreeSet::new();
    for s in &samples {
        let key = format!("{}{:?}", s.name, s.labels);
        if !seen_samples.insert(key) {
            errors.push(format!(
                "line {}: duplicate sample for {} with identical labels",
                s.line_no, s.name
            ));
        }
    }

    // Histogram completeness per declared histogram family.
    let mut report = LintReport {
        samples: samples.len(),
        ..LintReport::default()
    };
    for (name, ty) in &types {
        let has_any = samples
            .iter()
            .zip(&family_of_sample)
            .any(|(_, f)| f == name);
        match ty.as_str() {
            "counter" => report.counters += 1,
            "gauge" => report.gauges += 1,
            "histogram" => {
                report.histograms += 1;
                if !has_any {
                    errors.push(format!("histogram {name} declared but has no samples"));
                    continue;
                }
                let mut buckets: Vec<(f64, f64)> = Vec::new();
                let mut sum = None;
                let mut count = None;
                for s in &samples {
                    if s.name == format!("{name}_bucket") {
                        match s.labels.iter().find(|(k, _)| k == "le") {
                            Some((_, le)) => match parse_value(le) {
                                Some(edge) => buckets.push((edge, s.value)),
                                None => errors.push(format!(
                                    "line {}: unparsable le {le:?} on {name}_bucket",
                                    s.line_no
                                )),
                            },
                            None => errors.push(format!(
                                "line {}: {name}_bucket sample without an le label",
                                s.line_no
                            )),
                        }
                    } else if s.name == format!("{name}_sum") {
                        sum = Some(s.value);
                    } else if s.name == format!("{name}_count") {
                        count = Some(s.value);
                    }
                }
                if sum.is_none() {
                    errors.push(format!("histogram {name} has no _sum sample"));
                }
                let count = match count {
                    Some(c) => c,
                    None => {
                        errors.push(format!("histogram {name} has no _count sample"));
                        continue;
                    }
                };
                let inf = buckets
                    .iter()
                    .find(|(edge, _)| edge.is_infinite() && *edge > 0.0);
                match inf {
                    Some((_, inf_count)) => {
                        if *inf_count != count {
                            errors.push(format!(
                                "histogram {name}: +Inf bucket ({inf_count}) != _count ({count})"
                            ));
                        }
                    }
                    None => errors.push(format!("histogram {name} has no le=\"+Inf\" bucket")),
                }
                for w in buckets.windows(2) {
                    if w[0].0 >= w[1].0 {
                        errors.push(format!(
                            "histogram {name}: le edges not strictly increasing ({} then {})",
                            w[0].0, w[1].0
                        ));
                    }
                    if w[0].1 > w[1].1 {
                        errors.push(format!(
                            "histogram {name}: bucket counts not cumulative ({} then {})",
                            w[0].1, w[1].1
                        ));
                    }
                }
            }
            _ => {}
        }
        let _ = has_any;
    }

    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rendered_registry_passes_lint() {
        let r = MetricsRegistry::new();
        r.counter("bfs.traversals").add(7);
        r.counter("serve.responses_ok").add(2);
        r.gauge("serve.queue.depth").set(3.0);
        r.gauge("bfs.load.imbalance").set(1.25);
        r.set_label("serve.last_run_info", "run_id", "00ff00ff00ff00ff");
        let h = r.histogram("run.duration");
        h.record(Duration::from_millis(5));
        h.record(Duration::from_micros(10));
        let text = r.render_prometheus();
        let report = lint(&text).expect("own exposition must lint clean");
        assert_eq!(report.counters, 2);
        assert_eq!(report.gauges, 3, "two gauges + one info label");
        assert_eq!(report.histograms, 1);
        assert!(text.contains("fdiam_bfs_traversals_total 7"));
        assert!(text.contains("fdiam_serve_queue_depth 3"));
        assert!(text.contains("fdiam_serve_last_run_info{run_id=\"00ff00ff00ff00ff\"} 1"));
        assert!(text.contains("fdiam_run_duration_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("fdiam_run_duration_seconds_count 2"));
        assert!(text.contains("# TYPE fdiam_run_duration_seconds histogram"));
    }

    #[test]
    fn empty_registry_renders_and_lints_clean() {
        let r = MetricsRegistry::new();
        assert_eq!(lint(&r.render_prometheus()), Ok(LintReport::default()));
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_only() {
        let r = MetricsRegistry::new();
        let _ = r.histogram("run.duration");
        let text = r.render_prometheus();
        lint(&text).expect("empty histogram still complete");
        assert!(text.contains("fdiam_run_duration_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("fdiam_run_duration_seconds_sum 0"));
    }

    #[test]
    fn histogram_le_edges_match_log2_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("run.duration");
        h.record_nanos(1000); // bucket 9, upper edge 1024 ns
        let text = r.render_prometheus();
        lint(&text).unwrap();
        // The finite edge for bucket 9 is 1024 ns = 1.024e-6 s.
        assert!(
            text.contains("fdiam_run_duration_seconds_bucket{le=\"0.000001024\"} 1"),
            "missing log2 le edge in:\n{text}"
        );
    }

    #[test]
    fn lint_rejects_malformed_expositions() {
        // Bad metric name.
        assert!(lint("9bad_name 1\n").is_err());
        // Missing value.
        assert!(lint("fdiam_x\n").is_err());
        // Counter without _total.
        let bad_counter = "# TYPE fdiam_x counter\nfdiam_x 1\n";
        assert!(lint(bad_counter).is_err());
        // Unknown TYPE.
        assert!(lint("# TYPE fdiam_x sparkline\n").is_err());
        // Duplicate sample.
        assert!(lint("fdiam_x 1\nfdiam_x 2\n").is_err());
        // Interleaved families.
        assert!(lint("fdiam_a 1\nfdiam_b 1\nfdiam_a{l=\"x\"} 2\n").is_err());
        // Histogram without +Inf.
        let bad_histo = "\
# TYPE fdiam_h histogram
fdiam_h_bucket{le=\"1\"} 1
fdiam_h_sum 1
fdiam_h_count 1
";
        assert!(lint(bad_histo).is_err());
        // Histogram with non-cumulative buckets.
        let non_cumulative = "\
# TYPE fdiam_h histogram
fdiam_h_bucket{le=\"1\"} 2
fdiam_h_bucket{le=\"2\"} 1
fdiam_h_bucket{le=\"+Inf\"} 2
fdiam_h_sum 1
fdiam_h_count 2
";
        assert!(lint(non_cumulative).is_err());
        // +Inf disagreeing with _count.
        let inf_mismatch = "\
# TYPE fdiam_h histogram
fdiam_h_bucket{le=\"+Inf\"} 3
fdiam_h_sum 1
fdiam_h_count 2
";
        assert!(lint(inf_mismatch).is_err());
    }

    #[test]
    fn multi_label_info_and_labeled_counters_lint_clean() {
        let r = MetricsRegistry::new();
        r.set_info(
            "build_info",
            &[
                ("rev", "abcdef1234"),
                ("rustc", "rustc 1.85.0"),
                ("profile", "release"),
            ],
        );
        r.labeled_counter("flight.captures", "reason", "slow")
            .add(3);
        r.labeled_counter("flight.captures", "reason", "deadline")
            .inc();
        let text = r.render_prometheus();
        let report = lint(&text).expect("multi-label exposition must lint clean");
        assert_eq!(report.counters, 1, "one labeled counter family");
        assert!(text.contains(
            "fdiam_build_info{rev=\"abcdef1234\",rustc=\"rustc 1.85.0\",profile=\"release\"} 1"
        ));
        assert!(text.contains("fdiam_flight_captures_total{reason=\"slow\"} 3"));
        assert!(text.contains("fdiam_flight_captures_total{reason=\"deadline\"} 1"));
    }

    #[test]
    fn lint_accepts_labels_with_escapes() {
        let text = "fdiam_x{path=\"a\\\\b\\\"c\\nd\"} 1\n";
        let report = lint(text).unwrap();
        assert_eq!(report.samples, 1);
    }

    #[test]
    fn label_escaping_round_trips_through_lint() {
        let r = MetricsRegistry::new();
        r.set_label("serve.odd_info", "v", "quote\" slash\\ nl\n.");
        let text = r.render_prometheus();
        lint(&text).expect("escaped label must lint clean");
    }
}
