//! Flight-recorder contention and allocation contracts (the black-box
//! guarantees fdiam-serve relies on):
//!
//! * a multi-thread storm produces no duplicate sequence numbers within
//!   a shard, and every shard's accounting satisfies
//!   `emitted == retained + dropped`;
//! * the record path is allocation-free after warmup, measured with the
//!   same counting global allocator as `fdiam-bfs/tests/scratch_alloc.rs`.

use fdiam_obs::json::{parse, JsonValue};
use fdiam_obs::registry::BoundsSnapshot;
use fdiam_obs::{Event, FlightConfig, FlightRecorder, Observer, Phase, RunId, SpanId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// One full lap over the event vocabulary a worker thread emits.
fn emit_round(r: &FlightRecorder, t: u64, i: u64) {
    let run = RunId(t + 1);
    let span = SpanId(t * 1_000_000 + i + 1);
    r.event(&Event::RunStart {
        algorithm: "fdiam",
        n: 100,
        m: 250,
        run,
    });
    r.event(&Event::BfsStart {
        source: i as u32,
        span,
    });
    r.event(&Event::BfsLevel {
        level: 1,
        frontier: 10,
        edges_scanned: 25,
        bottom_up: false,
        span,
    });
    r.event(&Event::BfsEnd {
        source: i as u32,
        eccentricity: 4,
        visited: 100,
        span,
    });
    r.event(&Event::BoundsUpdate {
        snapshot: BoundsSnapshot {
            run,
            phase: "main_loop",
            bfs_count: i,
            lb: 3,
            ub: 9,
            vertices_remaining: 50,
            elapsed_nanos: 1_000,
        },
    });
    r.event(&Event::Progress {
        active: 50,
        bound: 4,
    });
    r.event(&Event::PhaseEnd {
        phase: Phase::EccBfs,
        nanos: 500,
        span,
    });
    r.event(&Event::RunEnd {
        diameter: 9,
        connected: true,
        nanos: 5_000,
        run,
    });
}

const EVENTS_PER_ROUND: u64 = 8;

// The allocation counter is process-global and the default harness runs
// tests on concurrent threads (whose bookkeeping allocates), so the
// storm and the allocation measurement run inside one #[test] — the
// only way to guarantee a quiet process during the measured window.
#[test]
fn storm_then_allocation_free_record_path() {
    storm_has_no_seq_duplicates_and_drop_accounting_balances();
    record_path_is_allocation_free_after_warmup();
}

fn storm_has_no_seq_duplicates_and_drop_accounting_balances() {
    const THREADS: u64 = 8;
    const ROUNDS: u64 = 1_250;
    let recorder = Arc::new(FlightRecorder::new(FlightConfig {
        shards: 4,
        capacity: 512,
        detail_sample: 1,
    }));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let r = Arc::clone(&recorder);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    emit_round(&r, t, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = recorder.shard_stats();
    let total_emitted: u64 = stats.iter().map(|s| s.emitted).sum();
    assert_eq!(
        total_emitted,
        THREADS * ROUNDS * EVENTS_PER_ROUND,
        "every recorded event is counted at exactly one shard"
    );
    for s in &stats {
        assert_eq!(
            s.emitted,
            s.retained as u64 + s.dropped,
            "shard {} drop accounting must balance",
            s.shard
        );
    }

    // The dump's per-shard seqs must be strictly increasing (so gaps
    // are detectable and nothing is double-reported), and the gap
    // markers must agree with the shard accounting.
    let dump = recorder.dump_jsonl();
    let mut seqs_by_shard: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let mut marker_drops: BTreeMap<u64, u64> = BTreeMap::new();
    let mut marker_next: BTreeMap<u64, u64> = BTreeMap::new();
    let mut event_lines = 0u64;
    for line in dump.lines() {
        let v: JsonValue = parse(line).expect("dump lines are valid JSON");
        let shard = v.get("shard").unwrap().as_u64().unwrap();
        if v.get("type").unwrap().as_str() == Some("dropped") {
            marker_drops.insert(shard, v.get("dropped").unwrap().as_u64().unwrap());
            marker_next.insert(shard, v.get("next_seq").unwrap().as_u64().unwrap());
        } else {
            event_lines += 1;
            seqs_by_shard
                .entry(shard)
                .or_default()
                .push(v.get("seq").unwrap().as_u64().unwrap());
        }
    }
    assert_eq!(
        event_lines,
        stats.iter().map(|s| s.retained as u64).sum::<u64>(),
        "dump contains exactly the retained events"
    );
    for (shard, seqs) in &seqs_by_shard {
        for w in seqs.windows(2) {
            assert!(
                w[0] < w[1],
                "shard {shard} seqs must be strictly increasing, saw {} then {}",
                w[0],
                w[1]
            );
        }
        let stat = &stats[*shard as usize];
        assert_eq!(*seqs.last().unwrap(), stat.emitted, "newest seq == emitted");
        if stat.dropped > 0 {
            assert_eq!(marker_drops.get(shard), Some(&stat.dropped));
            assert_eq!(marker_next.get(shard), Some(&seqs[0]));
            assert_eq!(seqs[0], stat.dropped + 1, "gap covers exactly the drops");
        } else {
            assert!(!marker_drops.contains_key(shard));
        }
    }
}

fn record_path_is_allocation_free_after_warmup() {
    let recorder = FlightRecorder::new(FlightConfig {
        shards: 2,
        capacity: 128,
        detail_sample: 1,
    });
    // Warmup: registers this thread's shard hint and exercises every
    // variant once; ring slots are pre-allocated at construction.
    for i in 0..4 {
        emit_round(&recorder, 0, i);
    }
    // Steady state covers both regimes: filling the remaining slots and
    // drop-oldest overwriting (1000 rounds ≫ capacity).
    let allocs = allocations(|| {
        for i in 0..1_000 {
            emit_round(&recorder, 0, i);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state flight record path allocated {allocs} times"
    );
    assert!(
        recorder.total_dropped() > 0,
        "ring wrapped during the measurement"
    );

    // Sampling mode decides per traversal without allocating either.
    let sampled = FlightRecorder::new(FlightConfig {
        shards: 1,
        capacity: 128,
        detail_sample: 8,
    });
    for i in 0..4 {
        emit_round(&sampled, 0, i);
    }
    let allocs = allocations(|| {
        for i in 0..1_000 {
            emit_round(&sampled, 0, i);
        }
    });
    assert_eq!(
        allocs, 0,
        "sampled flight record path allocated {allocs} times"
    );
}
