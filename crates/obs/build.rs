//! Captures build provenance (git revision, rustc version, cargo
//! profile) into compile-time env vars consumed by `build_info.rs`.
//! Everything degrades to "unknown" outside a git checkout or when the
//! probes fail — the build itself never does.

use std::process::Command;

fn capture(cmd: &mut Command) -> Option<String> {
    let out = cmd.output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim().to_string();
    (!s.is_empty()).then_some(s)
}

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let rustc_version =
        capture(Command::new(&rustc).arg("--version")).unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=FDIAM_RUSTC_VERSION={rustc_version}");

    let profile = std::env::var("PROFILE").unwrap_or_else(|_| "unknown".into());
    println!("cargo:rustc-env=FDIAM_BUILD_PROFILE={profile}");

    let rev = capture(Command::new("git").args(["rev-parse", "--short=10", "HEAD"]))
        .unwrap_or_else(|| "unknown".into());
    println!("cargo:rustc-env=FDIAM_BUILD_REV={rev}");

    // Re-run when HEAD moves so the baked-in revision stays honest
    // (harmless when the path is absent: cargo then re-runs freely).
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
