//! Process-level audit of the `fdiam` binary: every malformed,
//! truncated, or unreadable input must exit with code 1 and a one-line
//! `error: …` diagnostic — never a panic, never a zero exit. Mirrors
//! the corpus of `crates/graph/tests/io_malformed.rs` at the CLI
//! boundary, and exercises the `--timeout` / `FDIAM_TIMEOUT_SECS`
//! cancellation path end to end.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fdiam() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fdiam"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("fdiam_cli_proc_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Asserts the process failed the way `main.rs` promises for run
/// errors: exit code 1, a single `error: …` line on stderr, no panic.
fn expect_clean_failure(out: &Output, ctx: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "{ctx}: {stderr}");
    assert!(
        !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
        "{ctx}: must not panic:\n{stderr}"
    );
    let lines: Vec<&str> = stderr.lines().collect();
    assert_eq!(lines.len(), 1, "{ctx}: want one diagnostic line:\n{stderr}");
    assert!(
        lines[0].starts_with("error: "),
        "{ctx}: diagnostic must be prefixed:\n{stderr}"
    );
}

#[test]
fn malformed_inputs_fail_cleanly_for_every_format() {
    let dir = tmp_dir("malformed");
    // One representative of each reader's parse-error corpus
    // (io_malformed.rs), plus a truncated binary file.
    let corpus: &[(&str, &[u8])] = &[
        ("arc_before_problem.gr", b"a 1 2 1\n"),
        ("dup_problem.gr", b"p sp 3 1\np sp 3 1\n"),
        ("bad_kind.gr", b"p tour 3 1\n"),
        ("bad_vertex_count.gr", b"p sp x 1\n"),
        ("id_out_of_range.gr", b"p sp 3 1\na 0 2 1\n"),
        ("empty.mtx", b""),
        (
            "bad_header.mtx",
            b"%%NotMatrixMarket matrix coordinate pattern general\n1 1 0\n",
        ),
        (
            "non_square.mtx",
            b"%%MatrixMarket matrix coordinate pattern general\n3 4 0\n",
        ),
        ("bad_target.txt", b"1 two\n"),
        ("missing_field.el", b"7\n"),
        ("bad_magic.fdia", b"XDIA\x01\x00\x00\x00"),
        ("truncated.fdia", b"FD"),
    ];
    for (name, bytes) in corpus {
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        for sub in ["diameter", "info", "ecc"] {
            let out = fdiam().arg(sub).arg(&path).output().unwrap();
            expect_clean_failure(&out, &format!("{sub} {name}"));
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_binary_fails_cleanly_at_every_prefix() {
    // Byte-level sweep of the binary format through the CLI: write a
    // valid .fdia, then feed every proper prefix to `fdiam info`.
    let dir = tmp_dir("truncate");
    let full = dir.join("g.fdia");
    let out = fdiam()
        .args(["generate", "grid:3x3"])
        .arg(&full)
        .output()
        .unwrap();
    assert!(out.status.success(), "{:?}", out);
    let bytes = std::fs::read(&full).unwrap();
    // Sample cut points (every prefix is covered at the library layer;
    // the process boundary only needs representatives of each region).
    for cut in [0, 1, 4, 8, bytes.len() / 2, bytes.len() - 1] {
        let cut_path = dir.join(format!("cut{cut}.fdia"));
        std::fs::write(&cut_path, &bytes[..cut]).unwrap();
        let out = fdiam().arg("info").arg(&cut_path).output().unwrap();
        expect_clean_failure(&out, &format!("info at cut {cut}"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unreadable_and_unknown_inputs_fail_cleanly() {
    let dir = tmp_dir("unreadable");
    let missing = dir.join("does_not_exist.gr");
    let out = fdiam().arg("diameter").arg(&missing).output().unwrap();
    expect_clean_failure(&out, "missing file");

    let unknown = dir.join("graph.xyz");
    std::fs::write(&unknown, "0 1\n").unwrap();
    let out = fdiam().arg("diameter").arg(&unknown).output().unwrap();
    expect_clean_failure(&out, "unknown extension");

    // A directory is unreadable as a graph file.
    let out = fdiam()
        .arg("info")
        .arg(dir.join("d.gr").parent().unwrap())
        .output()
        .unwrap();
    let code = out.status.code();
    assert!(
        code == Some(1) || code == Some(2),
        "directory input: {out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn argv_errors_exit_2_with_usage() {
    for argv in [
        &["frobnicate"][..],
        &["diameter"],
        &["diameter", "--algorithm", "bogus", "g.txt"],
        &["diameter", "--timeout", "NaN", "g.txt"],
        &["diameter", "-a", "ifub", "--timeout", "5", "g.txt"],
        &["generate", "ba:100.5,3", "out.txt"][..1], // missing operands
    ] {
        let out = fdiam().args(argv).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{argv:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("USAGE"), "{argv:?}:\n{stderr}");
    }
}

#[test]
fn fractional_generate_spec_fails_cleanly() {
    let dir = tmp_dir("genspec");
    let out = fdiam()
        .args(["generate", "ba:100.5,3"])
        .arg(dir.join("out.txt"))
        .output()
        .unwrap();
    expect_clean_failure(&out, "fractional N");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("integer"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timeout_env_var_has_teeth() {
    let dir = tmp_dir("timeout_env");
    let graph = dir.join("g.txt");
    let out = fdiam()
        .args(["generate", "grid:60x60"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // Expired-before-start budget: exit 1 with a timeout diagnostic.
    let out = fdiam()
        .args(["diameter", "--serial"])
        .arg(&graph)
        .env("FDIAM_TIMEOUT_SECS", "0")
        .output()
        .unwrap();
    expect_clean_failure(&out, "FDIAM_TIMEOUT_SECS=0");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("timed out"),
        "{out:?}"
    );

    // Garbage env value is a hard error, not silently unbounded.
    let out = fdiam()
        .args(["diameter", "--serial"])
        .arg(&graph)
        .env("FDIAM_TIMEOUT_SECS", "soon")
        .output()
        .unwrap();
    expect_clean_failure(&out, "FDIAM_TIMEOUT_SECS=soon");

    // Empty means unset; a generous explicit flag completes.
    let out = fdiam()
        .args(["diameter", "--serial", "--timeout", "600"])
        .arg(&graph)
        .env("FDIAM_TIMEOUT_SECS", "")
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("diameter : 118"),
        "{out:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
