//! `fdiam` binary: thin shim over [`fdiam_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match fdiam_cli::parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", fdiam_cli::USAGE);
            std::process::exit(2);
        }
    };
    let mut out = std::io::stdout().lock();
    if let Err(e) = fdiam_cli::run(cmd, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
