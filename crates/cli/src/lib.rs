//! Implementation of the `fdiam` command-line tool.
//!
//! ```text
//! fdiam diameter [--algorithm NAME] [--serial] [--stats] [--threads N] INPUT
//! fdiam ecc INPUT                     # radius / center / periphery
//! fdiam info INPUT                    # Table-1-style summary
//! fdiam convert INPUT OUTPUT          # formats inferred from extensions
//! fdiam generate SPEC OUTPUT          # e.g. grid:100x100, ba:10000,5
//! ```
//!
//! Formats by extension: `.txt`/`.el` SNAP edge list, `.gr` DIMACS-9,
//! `.mtx` Matrix Market, `.fdia` binary CSR.
//!
//! The argument parsing and command execution live here (unit-testable);
//! `main.rs` is a thin shim.

use fdiam_graph::io::{binfmt, dimacs, edgelist, mtx};
use fdiam_graph::{CsrGraph, DiGraph, DiRelabeling, Relabeling, VertexOrder};
use fdiam_obs::{
    build_info, register_post_mortem, Event, Fanout, FlightConfig, FlightRecorder, JsonlTraceSink,
    MetricsObserver, MetricsRegistry, Observer, ProgressSink, RemapIds,
};
use std::path::Path;
use std::sync::Arc;

/// A parsed command line.
#[derive(Debug, PartialEq)]
pub enum Command {
    Diameter {
        input: String,
        algorithm: Algorithm,
        stats: bool,
        threads: Option<usize>,
        /// Rate-limited progress lines on stderr.
        progress: bool,
        /// Write a JSONL event trace to this path.
        trace: Option<String>,
        /// Print aggregated observer counters after the run.
        metrics: bool,
        /// Use the paper's fixed 10 % direction-switch rule instead of
        /// the default α/β heuristic (reproduction fidelity).
        paper_bfs: bool,
        /// Wall-clock budget for the run (`--timeout SECS`, or the
        /// `FDIAM_TIMEOUT_SECS` environment variable). Enforced
        /// cooperatively: the BFS kernels observe the deadline at every
        /// level barrier, so an expired run stops within one level.
        timeout: Option<std::time::Duration>,
        /// Load-time vertex relabeling pass (`--order`). The kernels
        /// run on the remapped CSR; every reported id (diametral pair,
        /// trace events) is translated back to the input's original
        /// ids.
        order: VertexOrder,
        /// Opt-in bit-parallel main loop (`--lanes N`): up to N (≤ 64)
        /// eccentricities per shared traversal. fdiam/fdiam-serial
        /// only (with `--directed`: lanes per shared directed sweep).
        lanes: Option<usize>,
        /// Directed mode (`--directed`): edge-list arcs stay one-way
        /// and the diameter/radius are certified by the directed
        /// SumSweep over the SCC condensation. Forces the sumsweep
        /// algorithm.
        directed: bool,
        /// Tee the run's events into an always-on flight recorder and
        /// write its ring to this path when the run ends — including
        /// the timeout path, and (via the panic hook) a crash.
        flight_dump: Option<String>,
    },
    Ecc {
        input: String,
        /// Load-time vertex relabeling pass (`--order`).
        order: VertexOrder,
        /// Directed mode: forward/backward eccentricities, `∞`-aware.
        directed: bool,
    },
    Info {
        input: String,
    },
    Convert {
        input: String,
        output: String,
    },
    Generate {
        spec: String,
        output: String,
    },
    Help,
    /// `fdiam --version`: version + compile-time provenance.
    Version,
}

/// Diameter algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    FdiamParallel,
    FdiamSerial,
    Ifub,
    GraphDiameter,
    SumSweep,
    Naive,
}

impl Algorithm {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "fdiam" => Algorithm::FdiamParallel,
            "fdiam-serial" => Algorithm::FdiamSerial,
            "ifub" => Algorithm::Ifub,
            "graph-diameter" => Algorithm::GraphDiameter,
            "sumsweep" => Algorithm::SumSweep,
            "naive" => Algorithm::Naive,
            other => {
                return Err(format!(
                    "unknown algorithm '{other}' (expected fdiam, fdiam-serial, ifub, graph-diameter, sumsweep, naive)"
                ))
            }
        })
    }
}

pub const USAGE: &str = "\
fdiam — fast exact graph diameter (F-Diam, ICPP'25 reproduction)

USAGE:
  fdiam diameter [--algorithm NAME] [--serial] [--stats] [--threads N]
                 [--progress] [--trace FILE] [--metrics] [--paper-bfs]
                 [--timeout SECS] [--order ORDER] [--lanes N] [--directed] INPUT
  fdiam ecc [--order ORDER] [--directed] INPUT    radius / center / periphery
  fdiam info INPUT                   graph summary (n, m, degrees, components)
  fdiam convert INPUT OUTPUT         convert between formats
  fdiam generate SPEC OUTPUT         write a synthetic graph
  fdiam help
  fdiam --version                    version, git rev, rustc, build profile

ALGORITHMS: fdiam (default), fdiam-serial, ifub, graph-diameter, sumsweep, naive
OBSERVABILITY (fdiam / fdiam-serial only):
  --progress      rate-limited progress lines on stderr
  --trace FILE    structured JSONL event trace (see DESIGN.md §7)
  --metrics       aggregated counters and phase timings after the run
  --flight-dump FILE  bounded flight-recorder ring of the run's last
                  events, written at run end (timeouts and panics
                  included) — analyze with `fdiam-trace flight`
  --paper-bfs     paper's fixed 10% BFS direction switch (fdiam/fdiam-serial)
  --timeout SECS  abort the run after SECS seconds (exit 1); the
                  FDIAM_TIMEOUT_SECS environment variable sets a default
LAYOUT / KERNEL:
  --order ORDER   load-time vertex relabeling: none (default), degree
                  (hubs first), bfs (discovery order). Cache locality
                  only — all reported ids stay in the input's space
  --lanes N       bit-parallel main loop: N (1-64) eccentricities per
                  shared traversal (fdiam/fdiam-serial only)
DIRECTED MODE:
  --directed      treat each edge-list `u v` line as a one-way arc
                  (.gr/.mtx/.fdia load bidirected) and certify the
                  directed diameter/radius with the directed SumSweep
                  over the SCC condensation; infinite values are
                  reported as such. Composes with --order, --lanes,
                  --timeout, --stats; forces the sumsweep algorithm
FORMATS (by extension): .txt/.el edge list | .gr DIMACS-9 | .mtx MatrixMarket | .fdia binary
GENERATE SPECS:
  grid:ROWSxCOLS           e.g. grid:512x512
  torus:ROWSxCOLS          wrap-around grid (F-Diam's slow case)
  ba:N,M[,SEED]            Barabasi-Albert
  rmat:SCALE,EF[,SEED]     RMAT (GTgraph parameters)
  road:N,EXTRA,K[,SEED]    road network (polyline chains)
  geometric:N,R[,SEED]     random geometric
";

/// Parses a command line (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "version" | "--version" | "-V" => Ok(Command::Version),
        "diameter" => {
            let mut algorithm = Algorithm::FdiamParallel;
            let mut stats = false;
            let mut threads = None;
            let mut input = None;
            let mut progress = false;
            let mut trace = None;
            let mut metrics = false;
            let mut paper_bfs = false;
            let mut timeout = None;
            let mut order = VertexOrder::default();
            let mut lanes = None;
            let mut directed = false;
            let mut flight_dump = None;
            let mut algo_explicit = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--algorithm" | "-a" => {
                        let v = it.next().ok_or("--algorithm needs a value")?;
                        algorithm = Algorithm::parse(v)?;
                        algo_explicit = true;
                    }
                    "--serial" => {
                        algorithm = Algorithm::FdiamSerial;
                        algo_explicit = true;
                    }
                    "--directed" => directed = true,
                    "--stats" => stats = true,
                    "--threads" | "-t" => {
                        let v = it.next().ok_or("--threads needs a value")?;
                        threads = Some(v.parse().map_err(|e| format!("bad thread count: {e}"))?);
                    }
                    "--progress" => progress = true,
                    "--metrics" => metrics = true,
                    "--paper-bfs" => paper_bfs = true,
                    "--timeout" => {
                        let v = it.next().ok_or("--timeout needs a value in seconds")?;
                        timeout = Some(parse_timeout_secs(v)?);
                    }
                    "--trace" => {
                        let v = it.next().ok_or("--trace needs a file path")?;
                        if v.starts_with('-') {
                            return Err(format!("--trace needs a file path, got '{v}'"));
                        }
                        trace = Some(v.to_string());
                    }
                    "--flight-dump" => {
                        let v = it.next().ok_or("--flight-dump needs a file path")?;
                        if v.starts_with('-') {
                            return Err(format!("--flight-dump needs a file path, got '{v}'"));
                        }
                        flight_dump = Some(v.to_string());
                    }
                    "--order" => {
                        let v = it.next().ok_or("--order needs a value")?;
                        order = VertexOrder::parse(v)?;
                    }
                    "--lanes" => {
                        let v = it.next().ok_or("--lanes needs a value")?;
                        let n: usize = v.parse().map_err(|e| format!("bad lane count: {e}"))?;
                        if n == 0 || n > fdiam_bfs::MAX_LANES {
                            return Err(format!(
                                "--lanes must be between 1 and {}, got {n}",
                                fdiam_bfs::MAX_LANES
                            ));
                        }
                        lanes = Some(n);
                    }
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("unexpected argument '{other}'")),
                }
            }
            if directed {
                if algo_explicit && algorithm != Algorithm::SumSweep {
                    return Err(
                        "--directed certifies via the directed SumSweep; drop --algorithm/--serial \
                         or pick '--algorithm sumsweep'"
                            .into(),
                    );
                }
                algorithm = Algorithm::SumSweep;
            }
            if (progress || trace.is_some() || metrics || flight_dump.is_some())
                && !matches!(algorithm, Algorithm::FdiamParallel | Algorithm::FdiamSerial)
            {
                return Err(
                    "--progress/--trace/--metrics/--flight-dump are only instrumented for the \
                     fdiam and fdiam-serial algorithms"
                        .into(),
                );
            }
            if paper_bfs && !matches!(algorithm, Algorithm::FdiamParallel | Algorithm::FdiamSerial)
            {
                return Err(
                    "--paper-bfs only applies to the fdiam and fdiam-serial algorithms".into(),
                );
            }
            if timeout.is_some()
                && !directed
                && !matches!(algorithm, Algorithm::FdiamParallel | Algorithm::FdiamSerial)
            {
                return Err(
                    "--timeout is only enforced for the fdiam, fdiam-serial, and --directed runs"
                        .into(),
                );
            }
            if lanes.is_some()
                && !directed
                && !matches!(algorithm, Algorithm::FdiamParallel | Algorithm::FdiamSerial)
            {
                return Err(
                    "--lanes only applies to the fdiam, fdiam-serial, and --directed runs".into(),
                );
            }
            Ok(Command::Diameter {
                input: input.ok_or("missing INPUT file")?,
                algorithm,
                stats,
                threads,
                progress,
                trace,
                metrics,
                paper_bfs,
                timeout,
                order,
                lanes,
                directed,
                flight_dump,
            })
        }
        "ecc" => {
            let mut input = None;
            let mut order = VertexOrder::default();
            let mut directed = false;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--order" => {
                        let v = it.next().ok_or("--order needs a value")?;
                        order = VertexOrder::parse(v)?;
                    }
                    "--directed" => directed = true,
                    other if !other.starts_with('-') && input.is_none() => {
                        input = Some(other.to_string())
                    }
                    other => return Err(format!("unexpected argument '{other}'")),
                }
            }
            Ok(Command::Ecc {
                input: input.ok_or("missing INPUT")?,
                order,
                directed,
            })
        }
        "info" => Ok(Command::Info {
            input: one_positional(&mut it, "INPUT")?,
        }),
        "convert" => {
            let input = one_positional(&mut it, "INPUT")?;
            let output = one_positional(&mut it, "OUTPUT")?;
            reject_extra(&mut it)?;
            Ok(Command::Convert { input, output })
        }
        "generate" => {
            let spec = one_positional(&mut it, "SPEC")?;
            let output = one_positional(&mut it, "OUTPUT")?;
            reject_extra(&mut it)?;
            Ok(Command::Generate { spec, output })
        }
        other => Err(format!("unknown command '{other}' (try 'fdiam help')")),
    }
}

/// Parses a timeout value in (possibly fractional) seconds. Rejects
/// NaN, infinities, and negative values with a message naming the
/// offending input; zero is allowed (the run is cancelled before its
/// first traversal).
pub fn parse_timeout_secs(raw: &str) -> Result<std::time::Duration, String> {
    let secs: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("bad timeout '{raw}' (expected seconds, e.g. 30 or 2.5)"))?;
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!(
            "bad timeout '{raw}' (must be a finite non-negative number of seconds)"
        ));
    }
    Ok(std::time::Duration::from_secs_f64(secs))
}

/// Reads the `FDIAM_TIMEOUT_SECS` environment variable: unset or empty
/// means no timeout; anything else must parse like `--timeout`.
pub fn timeout_from_env() -> Result<Option<std::time::Duration>, String> {
    match std::env::var("FDIAM_TIMEOUT_SECS") {
        Err(_) => Ok(None),
        Ok(v) if v.trim().is_empty() => Ok(None),
        Ok(v) => parse_timeout_secs(&v)
            .map(Some)
            .map_err(|e| format!("FDIAM_TIMEOUT_SECS: {e}")),
    }
}

fn one_positional<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    name: &str,
) -> Result<String, String> {
    it.next()
        .map(|s| s.to_string())
        .ok_or_else(|| format!("missing {name}"))
}

fn reject_extra<'a>(it: &mut impl Iterator<Item = &'a String>) -> Result<(), String> {
    match it.next() {
        Some(a) => Err(format!("unexpected argument '{a}'")),
        None => Ok(()),
    }
}

/// Reads a graph, inferring the format from the file extension.
pub fn read_graph(path: &str) -> Result<CsrGraph, String> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    let g = match ext {
        "txt" | "el" | "edges" => {
            edgelist::read_edge_list_file(path, 0).map_err(|e| e.to_string())?
        }
        "gr" => dimacs::read_dimacs_file(path).map_err(|e| e.to_string())?,
        "mtx" => mtx::read_mtx_file(path).map_err(|e| e.to_string())?,
        "fdia" => binfmt::read_binary_file(path).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown input extension '.{other}' for {path}")),
    };
    Ok(g)
}

/// Reads a digraph, inferring the format from the file extension.
/// Edge-list formats keep each `u v` line as a one-way arc; the
/// symmetric formats (`.gr`, `.mtx`, `.fdia`) symmetrize at load time
/// and therefore arrive as bidirected digraphs.
pub fn read_digraph(path: &str) -> Result<DiGraph, String> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "txt" | "el" | "edges" => {
            edgelist::read_directed_edge_list_file(path, 0).map_err(|e| e.to_string())
        }
        "gr" | "mtx" | "fdia" => Ok(DiGraph::from_undirected(&read_graph(path)?)),
        other => Err(format!("unknown input extension '.{other}' for {path}")),
    }
}

/// Writes a graph, inferring the format from the file extension.
pub fn write_graph(g: &CsrGraph, path: &str) -> Result<(), String> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "txt" | "el" | "edges" => {
            edgelist::write_edge_list_file(g, path).map_err(|e| e.to_string())
        }
        "gr" => {
            let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            dimacs::write_dimacs(g, std::io::BufWriter::new(f)).map_err(|e| e.to_string())
        }
        "mtx" => {
            let f = std::fs::File::create(path).map_err(|e| e.to_string())?;
            mtx::write_mtx(g, std::io::BufWriter::new(f)).map_err(|e| e.to_string())
        }
        "fdia" => binfmt::write_binary_file(g, path).map_err(|e| e.to_string()),
        other => Err(format!("unknown output extension '.{other}' for {path}")),
    }
}

/// Parses one integer spec parameter. Integer parameters must be
/// exactly that: `2.5`, `-3`, `NaN`, or `1e4` are rejected with a
/// message naming the parameter, instead of being silently truncated
/// through an `f64` round-trip.
fn int_param<T>(raw: &str, name: &str) -> Result<T, String>
where
    T: std::str::FromStr,
{
    raw.parse::<T>().map_err(|_| {
        if raw.parse::<f64>().is_ok_and(|v| v.is_finite()) {
            format!("{name} must be a non-negative integer, got '{raw}'")
        } else {
            format!("bad {name} '{raw}' (expected a non-negative integer)")
        }
    })
}

/// Parses one floating-point spec parameter, rejecting NaN, infinities,
/// and negative values.
fn float_param(raw: &str, name: &str) -> Result<f64, String> {
    let v: f64 = raw
        .parse()
        .map_err(|_| format!("bad {name} '{raw}' (expected a number)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "{name} must be a finite non-negative number, got '{raw}'"
        ));
    }
    Ok(v)
}

/// Parses the optional trailing `SEED` field (default 1).
fn seed_param(fields: &[&str], idx: usize) -> Result<u64, String> {
    match fields.get(idx) {
        None => Ok(1),
        Some(raw) => int_param(raw, "SEED"),
    }
}

/// Builds a graph from a `generate` spec string.
pub fn generate_graph(spec: &str) -> Result<CsrGraph, String> {
    use fdiam_graph::generators::*;
    let (kind, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("bad spec '{spec}' (expected KIND:PARAMS)"))?;
    let fields: Vec<&str> = rest.split(',').map(str::trim).collect();
    let arity = |lo: usize, hi: usize, usage: &str| -> Result<(), String> {
        if fields.len() < lo || fields.len() > hi {
            return Err(format!("{kind} spec needs {usage}"));
        }
        Ok(())
    };
    match kind {
        "grid" => {
            let (r, c) = rest
                .split_once('x')
                .ok_or_else(|| format!("bad grid spec '{rest}' (expected ROWSxCOLS)"))?;
            let r: usize = int_param(r.trim(), "ROWS")?;
            let c: usize = int_param(c.trim(), "COLS")?;
            Ok(grid2d(r, c))
        }
        "torus" => {
            // F-Diam's slow case: every vertex has the same
            // eccentricity, so Winnow/Eliminate remove little and the
            // main loop sweeps ~n/2 vertices — handy as a deliberately
            // long-running request when watching a run converge.
            let (r, c) = rest
                .split_once('x')
                .ok_or_else(|| format!("bad torus spec '{rest}' (expected ROWSxCOLS)"))?;
            let r: usize = int_param(r.trim(), "ROWS")?;
            let c: usize = int_param(c.trim(), "COLS")?;
            Ok(grid2d_torus(r, c))
        }
        "ba" => {
            arity(2, 3, "N,M[,SEED]")?;
            Ok(barabasi_albert(
                int_param(fields[0], "N")?,
                int_param(fields[1], "M")?,
                seed_param(&fields, 2)?,
            ))
        }
        "rmat" => {
            arity(2, 3, "SCALE,EF[,SEED]")?;
            Ok(rmat(
                int_param(fields[0], "SCALE")?,
                int_param(fields[1], "EF")?,
                RmatProbabilities::GTGRAPH,
                seed_param(&fields, 2)?,
            ))
        }
        "road" => {
            arity(3, 4, "N,EXTRA,K[,SEED]")?;
            Ok(road_network(
                int_param(fields[0], "N")?,
                float_param(fields[1], "EXTRA")?,
                int_param(fields[2], "K")?,
                seed_param(&fields, 3)?,
            ))
        }
        "geometric" => {
            arity(2, 3, "N,R[,SEED]")?;
            Ok(random_geometric(
                int_param(fields[0], "N")?,
                float_param(fields[1], "R")?,
                seed_param(&fields, 2)?,
            ))
        }
        other => Err(format!("unknown generator '{other}'")),
    }
}

/// Executes a command, writing human-readable output to `out`.
/// Shares one flight recorder between the sink fan-out (which owns its
/// boxes) and the end-of-run dump. The recorder never requests
/// per-level BFS detail itself — it only samples what other sinks
/// (progress, trace) already cause the kernels to emit.
struct SharedRecorder(Arc<FlightRecorder>);

impl Observer for SharedRecorder {
    fn event(&self, e: &Event<'_>) {
        self.0.event(e);
    }

    fn wants_bfs_detail(&self) -> bool {
        self.0.wants_bfs_detail()
    }
}

pub fn run(cmd: Command, out: &mut impl std::io::Write) -> Result<(), String> {
    let w = |e: std::io::Error| e.to_string();
    match cmd {
        Command::Help => write!(out, "{USAGE}").map_err(w),
        Command::Version => {
            let bi = build_info();
            writeln!(
                out,
                "fdiam {} (rev {}, {}, {})",
                bi.version, bi.rev, bi.profile, bi.rustc
            )
            .map_err(w)
        }
        Command::Info { input } => {
            let g = read_graph(&input)?;
            let s = fdiam_graph::analysis::GraphSummary::compute(&g);
            writeln!(out, "file              : {input}").map_err(w)?;
            writeln!(out, "vertices          : {}", s.vertices).map_err(w)?;
            writeln!(out, "arcs (2m)         : {}", s.arcs).map_err(w)?;
            writeln!(out, "avg degree        : {:.2}", s.avg_degree).map_err(w)?;
            writeln!(out, "max degree        : {}", s.max_degree).map_err(w)?;
            writeln!(out, "isolated vertices : {}", s.isolated_vertices).map_err(w)?;
            writeln!(out, "components        : {}", s.num_components).map_err(w)
        }
        Command::Convert { input, output } => {
            let g = read_graph(&input)?;
            write_graph(&g, &output)?;
            writeln!(
                out,
                "wrote {} vertices / {} edges to {output}",
                g.num_vertices(),
                g.num_undirected_edges()
            )
            .map_err(w)
        }
        Command::Generate { spec, output } => {
            let g = generate_graph(&spec)?;
            write_graph(&g, &output)?;
            writeln!(
                out,
                "generated '{spec}': {} vertices / {} edges → {output}",
                g.num_vertices(),
                g.num_undirected_edges()
            )
            .map_err(w)
        }
        Command::Ecc {
            input,
            order,
            directed,
        } => {
            if directed {
                return run_directed_ecc(&input, order, out);
            }
            let loaded = read_graph(&input)?;
            let relabel = order.apply(&loaded);
            let g = relabel.as_ref().map_or(&loaded, |m| &m.graph);
            let r = fdiam_analytics::bounding_ecc::bounding_eccentricities(g);
            // Back-permute so the per-vertex array is indexed by
            // original ids — the aggregates below are order-invariant,
            // but anything id-indexed must leave in the input's space.
            let e = &match &relabel {
                Some(m) => m.to_original_indexing(&r.eccentricities),
                None => r.eccentricities.clone(),
            };
            let radius = e.iter().min().copied().unwrap_or(0);
            let diam = e.iter().max().copied().unwrap_or(0);
            let center = e.iter().filter(|&&x| x == radius).count();
            let periphery = e.iter().filter(|&&x| x == diam).count();
            writeln!(out, "radius     : {radius}").map_err(w)?;
            writeln!(out, "diameter   : {diam}").map_err(w)?;
            writeln!(out, "|center|   : {center}").map_err(w)?;
            writeln!(out, "|periphery|: {periphery}").map_err(w)?;
            writeln!(
                out,
                "bfs calls  : {} (n = {})",
                r.bfs_calls,
                g.num_vertices()
            )
            .map_err(w)
        }
        Command::Diameter {
            input,
            algorithm,
            stats,
            threads,
            progress,
            trace,
            metrics,
            paper_bfs,
            timeout,
            order,
            lanes,
            directed,
            flight_dump,
        } => {
            if directed {
                if let Some(t) = threads {
                    rayon::ThreadPoolBuilder::new()
                        .num_threads(t)
                        .build_global()
                        .map_err(|e| e.to_string())?;
                }
                return run_directed_diameter(&input, stats, timeout, order, lanes, out);
            }
            let loaded = read_graph(&input)?;
            let relabel: Option<Relabeling> = order.apply(&loaded);
            let g = relabel.as_ref().map_or(&loaded, |m| &m.graph);
            // The env default only applies where a timeout is
            // enforceable (an explicit --timeout with another algorithm
            // is already rejected at parse time).
            let timeout = match timeout {
                Some(t) => Some(t),
                None if matches!(algorithm, Algorithm::FdiamParallel | Algorithm::FdiamSerial) => {
                    timeout_from_env()?
                }
                None => None,
            };
            if let Some(t) = threads {
                rayon::ThreadPoolBuilder::new()
                    .num_threads(t)
                    .build_global()
                    .map_err(|e| e.to_string())?;
            }
            let t0 = std::time::Instant::now();
            let mut metrics_registry = None;
            let (diam, connected, bfs, detail, pair) = match algorithm {
                Algorithm::FdiamParallel | Algorithm::FdiamSerial => {
                    let mut cfg = if algorithm == Algorithm::FdiamParallel {
                        fdiam_core::FdiamConfig::parallel()
                    } else {
                        fdiam_core::FdiamConfig::serial()
                    };
                    if paper_bfs {
                        cfg = cfg.with_paper_bfs();
                    }
                    if let Some(n) = lanes {
                        cfg = cfg.with_lane_batch(n);
                    }
                    let mut sinks: Vec<Box<dyn Observer + Send>> = Vec::new();
                    if progress {
                        sinks.push(Box::new(ProgressSink::stderr()));
                    }
                    if let Some(path) = &trace {
                        let sink = JsonlTraceSink::create(path)
                            .map_err(|e| format!("cannot create trace file '{path}': {e}"))?;
                        sinks.push(Box::new(sink));
                    }
                    if metrics {
                        let registry = Arc::new(MetricsRegistry::new());
                        sinks.push(Box::new(MetricsObserver::new(Arc::clone(&registry))));
                        metrics_registry = Some(registry);
                    }
                    let mut flight_recorder = None;
                    let mut _post_mortem_guard = None;
                    if let Some(path) = &flight_dump {
                        let rec = Arc::new(FlightRecorder::new(FlightConfig::default()));
                        sinks.push(Box::new(SharedRecorder(Arc::clone(&rec))));
                        // A panic mid-run still leaves the ring on disk.
                        _post_mortem_guard =
                            Some(register_post_mortem(&rec, path.clone(), Vec::new));
                        flight_recorder = Some(rec);
                    }
                    // Kernels run on the (possibly relabeled) graph and
                    // therefore emit internal ids; `RemapIds` translates
                    // every id-carrying event back to the input's space
                    // before it reaches a sink.
                    let unobserved = sinks.is_empty();
                    let fanout = Fanout::new(sinks);
                    let remap_storage;
                    let observer: &dyn Observer = match &relabel {
                        Some(m) if !unobserved => {
                            remap_storage = RemapIds::new(&fanout, &m.to_original);
                            &remap_storage
                        }
                        _ => &fanout,
                    };
                    let run_res = match timeout {
                        None if unobserved => Ok(fdiam_core::diameter_with(g, &cfg)),
                        None => Ok(fdiam_core::diameter_with_observer(g, &cfg, observer)),
                        Some(budget) => {
                            let token = fdiam_obs::CancelToken::with_deadline(budget);
                            let res = if unobserved {
                                fdiam_core::run_cancellable(g, &cfg, fdiam_obs::noop(), &token)
                            } else {
                                fdiam_core::run_cancellable(g, &cfg, observer, &token)
                            };
                            res.map_err(|_| format!("timed out after {}s", budget.as_secs_f64()))
                        }
                    };
                    // The dump is written however the run ended — the
                    // ring of a timed-out run is exactly the forensic
                    // artifact --flight-dump exists for.
                    if let (Some(rec), Some(path)) = (&flight_recorder, &flight_dump) {
                        std::fs::write(path, rec.dump_jsonl())
                            .map_err(|e| format!("cannot write flight dump '{path}': {e}"))?;
                    }
                    let o = run_res?;
                    let detail = stats.then(|| {
                        let p = o.stats.removed.percentages(g.num_vertices());
                        format!(
                            "removed: winnow {:.2}% | eliminate {:.2}% | chain {:.2}% | degree-0 {:.2}%\nchains processed: {}",
                            p[0], p[1], p[2], p[3], o.stats.chains_processed
                        )
                    });
                    (
                        o.result.largest_cc_diameter,
                        o.result.connected,
                        o.stats.bfs_traversals(),
                        detail,
                        o.diametral_pair,
                    )
                }
                Algorithm::Ifub => {
                    let r = fdiam_baselines::ifub::ifub(g);
                    (r.largest_cc_diameter, r.connected, r.bfs_calls, None, None)
                }
                Algorithm::GraphDiameter => {
                    let r = fdiam_baselines::graph_diameter::graph_diameter(g);
                    (r.largest_cc_diameter, r.connected, r.bfs_calls, None, None)
                }
                Algorithm::SumSweep => {
                    let r = fdiam_analytics::sum_sweep::exact_sum_sweep(g).ok_or("empty graph")?;
                    let detail = stats.then(|| format!("radius: {}", r.radius));
                    (r.diameter, r.connected, r.bfs_calls, detail, None)
                }
                Algorithm::Naive => {
                    let r = fdiam_baselines::naive::naive_diameter(g);
                    (r.largest_cc_diameter, r.connected, r.bfs_calls, None, None)
                }
            };
            // The pair leaves the process in original ids, whatever
            // internal order the kernels ran under.
            let pair = pair.map(|(s, t)| match &relabel {
                Some(m) => (m.original(s), m.original(t)),
                None => (s, t),
            });
            let elapsed = t0.elapsed();
            if connected {
                writeln!(out, "diameter : {diam}").map_err(w)?;
            } else {
                writeln!(out, "diameter : infinite (disconnected)").map_err(w)?;
                writeln!(out, "largest connected-component diameter: {diam}").map_err(w)?;
            }
            writeln!(out, "time     : {:.3}s", elapsed.as_secs_f64()).map_err(w)?;
            writeln!(out, "bfs calls: {bfs}").map_err(w)?;
            if let Some((s, t)) = pair {
                writeln!(out, "pair     : {s} -- {t}").map_err(w)?;
            }
            if let Some(d) = detail {
                writeln!(out, "{d}").map_err(w)?;
            }
            if let Some(registry) = metrics_registry {
                writeln!(out, "metrics:").map_err(w)?;
                for line in registry.render_summary().lines() {
                    writeln!(out, "  {line}").map_err(w)?;
                }
            }
            Ok(())
        }
    }
}

/// The `diameter --directed` path: load a [`DiGraph`], optionally
/// relabel, run the directed SumSweep (serial, batched, or
/// cancellable), and report `∞`-aware results in original ids.
fn run_directed_diameter(
    input: &str,
    stats: bool,
    timeout: Option<std::time::Duration>,
    order: VertexOrder,
    lanes: Option<usize>,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let w = |e: std::io::Error| e.to_string();
    let loaded = read_digraph(input)?;
    let relabel: Option<DiRelabeling> = order.apply_directed(&loaded);
    let g = relabel.as_ref().map_or(&loaded, |m| &m.graph);
    let timeout = match timeout {
        Some(t) => Some(t),
        None => timeout_from_env()?,
    };
    let t0 = std::time::Instant::now();
    let r = match timeout {
        None => match lanes {
            None => fdiam_analytics::directed_sum_sweep(g),
            Some(k) => fdiam_analytics::directed_sum_sweep_batched(g, k),
        },
        Some(budget) => {
            let token = fdiam_obs::CancelToken::with_deadline(budget);
            let res = match lanes {
                None => fdiam_analytics::directed_sum_sweep_cancellable(g, &token),
                Some(k) => fdiam_analytics::directed_sum_sweep_batched_observed(
                    g,
                    k,
                    fdiam_obs::RunId::fresh(),
                    fdiam_obs::noop(),
                    Some(&token),
                ),
            };
            res.map_err(|_| format!("timed out after {}s", budget.as_secs_f64()))?
        }
    };
    let Some(r) = r else {
        return Err("empty graph".into());
    };
    let original = |v: fdiam_graph::VertexId| relabel.as_ref().map_or(v, |m| m.original(v));
    match r.diameter {
        Some(d) => writeln!(out, "diameter : {d}").map_err(w)?,
        None => writeln!(out, "diameter : infinite (not strongly connected)").map_err(w)?,
    }
    match r.radius {
        Some(rad) => writeln!(out, "radius   : {rad}").map_err(w)?,
        None => writeln!(out, "radius   : infinite (no vertex reaches all)").map_err(w)?,
    }
    writeln!(out, "time     : {:.3}s", t0.elapsed().as_secs_f64()).map_err(w)?;
    writeln!(out, "bfs calls: {}", r.bfs_calls).map_err(w)?;
    if let Some(v) = r.diametral_vertex {
        writeln!(out, "diametral: {}", original(v)).map_err(w)?;
    }
    if let Some(v) = r.central_vertex {
        writeln!(out, "central  : {}", original(v)).map_err(w)?;
    }
    if stats {
        writeln!(out, "sccs     : {}", r.num_sccs).map_err(w)?;
    }
    Ok(())
}

/// The `ecc --directed` path: forward/backward eccentricities of every
/// vertex via 64-lane batched directed traversals, with unreachable
/// pairs surfacing as infinite eccentricities.
fn run_directed_ecc(
    input: &str,
    order: VertexOrder,
    out: &mut impl std::io::Write,
) -> Result<(), String> {
    let w = |e: std::io::Error| e.to_string();
    let loaded = read_digraph(input)?;
    let relabel = order.apply_directed(&loaded);
    let g = relabel.as_ref().map_or(&loaded, |m| &m.graph);
    let r = fdiam_analytics::directed_eccentricities(g);
    // Back-permute to original-id indexing (the aggregates below are
    // order-invariant, but the convention matches the undirected path).
    let (fwd, bwd) = match &relabel {
        Some(m) => (
            m.to_original_indexing(&r.forward),
            m.to_original_indexing(&r.backward),
        ),
        None => (r.forward.clone(), r.backward.clone()),
    };
    let radius = fwd.iter().flatten().min().copied();
    let diameter = if !fwd.is_empty() && fwd.iter().all(Option::is_some) {
        fwd.iter().flatten().max().copied()
    } else {
        None
    };
    match radius {
        Some(rad) => writeln!(out, "radius     : {rad}").map_err(w)?,
        None => writeln!(out, "radius     : infinite (no vertex reaches all)").map_err(w)?,
    }
    match diameter {
        Some(d) => writeln!(out, "diameter   : {d}").map_err(w)?,
        None => writeln!(out, "diameter   : infinite (not strongly connected)").map_err(w)?,
    }
    let reach_all = fwd.iter().filter(|e| e.is_some()).count();
    let reached_by_all = bwd.iter().filter(|e| e.is_some()).count();
    writeln!(out, "reach all  : {reach_all} vertices").map_err(w)?;
    writeln!(out, "reached by all: {reached_by_all} vertices").map_err(w)?;
    writeln!(
        out,
        "bfs calls  : {} (2n = {})",
        r.bfs_calls,
        2 * g.num_vertices()
    )
    .map_err(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_help_and_empty() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parse_diameter_variants() {
        let c = parse_args(&args(&["diameter", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Diameter {
                input: "g.txt".into(),
                algorithm: Algorithm::FdiamParallel,
                stats: false,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            }
        );
        let c = parse_args(&args(&[
            "diameter",
            "--algorithm",
            "ifub",
            "--stats",
            "--threads",
            "4",
            "g.gr",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Diameter {
                input: "g.gr".into(),
                algorithm: Algorithm::Ifub,
                stats: true,
                threads: Some(4),
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            }
        );
        let c = parse_args(&args(&["diameter", "--serial", "g.mtx"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                algorithm: Algorithm::FdiamSerial,
                ..
            }
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args(&["diameter"])).is_err());
        assert!(parse_args(&args(&["diameter", "--algorithm"])).is_err());
        assert!(parse_args(&args(&["diameter", "--algorithm", "bogus", "g.txt"])).is_err());
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["convert", "a.txt"])).is_err());
        assert!(parse_args(&args(&["convert", "a.txt", "b.gr", "c"])).is_err());
    }

    #[test]
    fn parse_observability_flags() {
        let c = parse_args(&args(&[
            "diameter",
            "--progress",
            "--metrics",
            "--trace",
            "run.jsonl",
            "g.txt",
        ]))
        .unwrap();
        assert_eq!(
            c,
            Command::Diameter {
                input: "g.txt".into(),
                algorithm: Algorithm::FdiamParallel,
                stats: false,
                threads: None,
                progress: true,
                trace: Some("run.jsonl".into()),
                metrics: true,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            }
        );
    }

    #[test]
    fn trace_flag_requires_a_path() {
        // missing value entirely
        assert!(parse_args(&args(&["diameter", "g.txt", "--trace"])).is_err());
        // next token is another flag, not a path
        let e = parse_args(&args(&["diameter", "--trace", "--stats", "g.txt"])).unwrap_err();
        assert!(e.contains("--trace needs a file path"), "{e}");
    }

    #[test]
    fn observability_flags_require_fdiam() {
        for flag in [&["--progress"][..], &["--metrics"], &["--trace", "t.jsonl"]] {
            let mut a = vec!["diameter".to_string(), "-a".into(), "ifub".into()];
            a.extend(flag.iter().map(|s| s.to_string()));
            a.push("g.txt".into());
            let e = parse_args(&a).unwrap_err();
            assert!(e.contains("fdiam"), "{e}");
        }
        // ...but both fdiam variants accept them
        assert!(parse_args(&args(&["diameter", "--serial", "--metrics", "g.txt"])).is_ok());
        assert!(parse_args(&args(&["diameter", "--progress", "g.txt"])).is_ok());
    }

    #[test]
    fn paper_bfs_flag_parses_and_requires_fdiam() {
        let c = parse_args(&args(&["diameter", "--paper-bfs", "g.txt"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                paper_bfs: true,
                ..
            }
        ));
        let c = parse_args(&args(&["diameter", "--serial", "--paper-bfs", "g.txt"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                paper_bfs: true,
                ..
            }
        ));
        let e = parse_args(&args(&["diameter", "-a", "ifub", "--paper-bfs", "g.txt"])).unwrap_err();
        assert!(e.contains("--paper-bfs"), "{e}");
    }

    #[test]
    fn generate_specs() {
        assert_eq!(generate_graph("grid:4x5").unwrap().num_vertices(), 20);
        assert_eq!(generate_graph("torus:6x7").unwrap().num_vertices(), 42);
        // Wrap-around halves the diameter relative to the open grid:
        // ⌊6/2⌋ + ⌊7/2⌋ for the torus vs 5 + 6 for the grid.
        assert_eq!(
            fdiam_core::diameter(&generate_graph("torus:6x7").unwrap()).largest_cc_diameter,
            6
        );
        assert!(generate_graph("torus:6").is_err());
        assert_eq!(generate_graph("ba:100,3").unwrap().num_vertices(), 100);
        assert_eq!(generate_graph("rmat:8,4,7").unwrap().num_vertices(), 256);
        assert!(generate_graph("road:500,0.3,2").unwrap().num_vertices() > 300);
        assert!(generate_graph("geometric:200,0.2").unwrap().num_vertices() == 200);
        assert!(generate_graph("grid:4").is_err());
        assert!(generate_graph("nope:1,2").is_err());
        assert!(generate_graph("ba:1").is_err());
    }

    #[test]
    fn generate_rejects_fractional_integer_params() {
        // Every integer slot used to go through an f64 round-trip that
        // silently truncated: ba:100.9,3 built ba:100,3.
        for spec in [
            "grid:4.5x5",
            "grid:4x5.5",
            "ba:100.9,3",
            "ba:100,3.5",
            "ba:100,3,2.5",
            "rmat:8.1,4",
            "rmat:8,4.2",
            "rmat:8,4,1.5",
            "road:500.4,0.3,2",
            "road:500,0.3,2.9",
            "road:500,0.3,2,7.5",
            "geometric:200.2,0.2",
            "geometric:200,0.2,3.3",
        ] {
            let e = generate_graph(spec).unwrap_err();
            assert!(e.contains("integer"), "spec '{spec}': {e}");
        }
    }

    #[test]
    fn generate_rejects_negative_and_nan_params() {
        for spec in [
            "ba:-100,3",
            "ba:100,-3",
            "rmat:-8,4",
            "road:500,-0.3,2",
            "road:500,NaN,2",
            "road:500,inf,2",
            "geometric:200,-0.2",
            "geometric:200,NaN",
            "geometric:NaN,0.2",
        ] {
            assert!(generate_graph(spec).is_err(), "spec '{spec}' must fail");
        }
    }

    #[test]
    fn generate_errors_name_the_parameter() {
        assert!(generate_graph("ba:x,3").unwrap_err().contains('N'));
        assert!(generate_graph("ba:100,x").unwrap_err().contains('M'));
        assert!(generate_graph("rmat:x,4").unwrap_err().contains("SCALE"));
        assert!(generate_graph("rmat:8,x").unwrap_err().contains("EF"));
        assert!(generate_graph("road:500,x,2")
            .unwrap_err()
            .contains("EXTRA"));
        assert!(generate_graph("geometric:200,x").unwrap_err().contains('R'));
        assert!(generate_graph("ba:10,2,x").unwrap_err().contains("SEED"));
    }

    #[test]
    fn generate_valid_specs_per_family_with_whitespace_and_seed() {
        // Exact integer params still work, with optional seed and
        // tolerated whitespace.
        assert_eq!(generate_graph("ba: 50 , 2 , 9").unwrap().num_vertices(), 50);
        assert_eq!(generate_graph("rmat:6,4").unwrap().num_vertices(), 64);
        assert!(generate_graph("road:200,0.25,3,4").unwrap().num_vertices() > 100);
        assert_eq!(
            generate_graph("geometric:80,0.3,5").unwrap().num_vertices(),
            80
        );
        // Different seeds produce different graphs (seed actually used).
        let a = generate_graph("ba:100,3,1").unwrap();
        let b = generate_graph("ba:100,3,2").unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
    }

    #[test]
    fn parse_timeout_flag() {
        let c = parse_args(&args(&["diameter", "--timeout", "30", "g.txt"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                timeout: Some(t),
                ..
            } if t == std::time::Duration::from_secs(30)
        ));
        let c = parse_args(&args(&[
            "diameter",
            "--timeout",
            "2.5",
            "--serial",
            "g.txt",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                timeout: Some(t),
                ..
            } if t == std::time::Duration::from_secs_f64(2.5)
        ));
        // a non-numeric value (here the input path) is rejected
        assert!(parse_args(&args(&["diameter", "--timeout", "g.txt"])).is_err());
        // missing value entirely
        assert!(parse_args(&args(&["diameter", "g.txt", "--timeout"])).is_err());
        for bad in ["-1", "NaN", "inf", "abc"] {
            let e = parse_args(&args(&["diameter", "--timeout", bad, "g.txt"])).unwrap_err();
            assert!(e.contains("timeout"), "{e}");
        }
        let e = parse_args(&args(&[
            "diameter",
            "-a",
            "ifub",
            "--timeout",
            "5",
            "g.txt",
        ]))
        .unwrap_err();
        assert!(e.contains("--timeout"), "{e}");
    }

    #[test]
    fn timed_out_diameter_run_reports_error() {
        let dir = std::env::temp_dir().join("fdiam_cli_timeout_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:40x40".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let e = run(
            Command::Diameter {
                input: el,
                algorithm: Algorithm::FdiamSerial,
                stats: false,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: Some(std::time::Duration::ZERO),
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.contains("timed out"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generous_timeout_still_completes() {
        let dir = std::env::temp_dir().join("fdiam_cli_timeout_ok_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:10x10".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let mut out = Vec::new();
        run(
            Command::Diameter {
                input: el,
                algorithm: Algorithm::FdiamSerial,
                stats: false,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: Some(std::time::Duration::from_secs(600)),
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("diameter : 18"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn timeout_secs_parsing() {
        assert_eq!(
            parse_timeout_secs("30").unwrap(),
            std::time::Duration::from_secs(30)
        );
        assert_eq!(
            parse_timeout_secs(" 0.25 ").unwrap(),
            std::time::Duration::from_millis(250)
        );
        assert_eq!(parse_timeout_secs("0").unwrap(), std::time::Duration::ZERO);
        for bad in ["", "x", "-3", "NaN", "inf", "-inf"] {
            assert!(parse_timeout_secs(bad).is_err(), "'{bad}' must be rejected");
        }
    }

    #[test]
    fn end_to_end_generate_convert_diameter() {
        let dir = std::env::temp_dir().join("fdiam_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        let bin = dir.join("g.fdia").to_string_lossy().into_owned();

        let mut out = Vec::new();
        run(
            Command::Generate {
                spec: "grid:10x10".into(),
                output: el.clone(),
            },
            &mut out,
        )
        .unwrap();
        run(
            Command::Convert {
                input: el.clone(),
                output: bin.clone(),
            },
            &mut out,
        )
        .unwrap();
        out.clear();
        run(
            Command::Diameter {
                input: bin.clone(),
                algorithm: Algorithm::FdiamSerial,
                stats: true,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("diameter : 18"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diameter_with_trace_and_metrics() {
        let dir = std::env::temp_dir().join("fdiam_cli_obs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        let trace = dir.join("run.jsonl").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:10x10".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            Command::Diameter {
                input: el,
                algorithm: Algorithm::FdiamSerial,
                stats: false,
                threads: None,
                progress: false,
                trace: Some(trace.clone()),
                metrics: true,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: None,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("diameter : 18"), "{text}");
        assert!(text.contains("metrics:"), "{text}");
        assert!(text.contains("bfs.traversals"), "{text}");
        assert!(text.contains("phase.ecc_bfs.duration"), "{text}");

        let body = std::fs::read_to_string(&trace).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert!(lines.len() >= 3, "trace too short:\n{body}");
        for line in &lines {
            let v = fdiam_obs::json::parse(line)
                .unwrap_or_else(|e| panic!("trace line is not valid JSON ({e}): {line}"));
            assert!(v.get("type").and_then(|t| t.as_str()).is_some(), "{line}");
        }
        assert!(lines[0].contains("\"type\":\"run_start\""), "{}", lines[0]);
        assert!(
            lines.last().unwrap().contains("\"type\":\"run_end\""),
            "{}",
            lines.last().unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn diameter_with_flight_dump_writes_analyzable_ring() {
        let dir = std::env::temp_dir().join("fdiam_cli_flight_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        let dump = dir.join("ring.jsonl").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:10x10".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();

        let mut out = Vec::new();
        run(
            Command::Diameter {
                input: el,
                algorithm: Algorithm::FdiamSerial,
                stats: false,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: None,
                order: VertexOrder::None,
                lanes: None,
                directed: false,
                flight_dump: Some(dump.clone()),
            },
            &mut out,
        )
        .unwrap();
        assert!(String::from_utf8(out).unwrap().contains("diameter : 18"));

        let body = std::fs::read_to_string(&dump).unwrap();
        assert!(!body.is_empty(), "flight dump must not be empty");
        // Every line is flight-dump JSONL with seq/shard correlation,
        // and the run's lifecycle made it into the ring.
        for line in body.lines() {
            let v = fdiam_obs::json::parse(line)
                .unwrap_or_else(|e| panic!("dump line is not valid JSON ({e}): {line}"));
            assert!(
                v.get("seq").is_some() || v.get("dropped").is_some(),
                "{line}"
            );
        }
        assert!(body.contains("\"type\":\"run_start\""), "{body}");
        assert!(body.contains("\"type\":\"run_end\""), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flight_dump_flag_parses_and_is_gated_like_trace() {
        let c = parse_args(&args(&["diameter", "--flight-dump", "ring.jsonl", "g.txt"])).unwrap();
        match c {
            Command::Diameter { flight_dump, .. } => {
                assert_eq!(flight_dump.as_deref(), Some("ring.jsonl"))
            }
            other => panic!("unexpected parse: {other:?}"),
        }
        let e = parse_args(&args(&[
            "diameter",
            "--algorithm",
            "ifub",
            "--flight-dump",
            "ring.jsonl",
            "g.txt",
        ]))
        .unwrap_err();
        assert!(e.contains("--flight-dump"), "{e}");
        let e = parse_args(&args(&["diameter", "--flight-dump", "--stats", "g.txt"])).unwrap_err();
        assert!(e.contains("file path"), "{e}");
    }

    #[test]
    fn version_prints_build_provenance() {
        assert_eq!(parse_args(&args(&["--version"])).unwrap(), Command::Version);
        assert_eq!(parse_args(&args(&["-V"])).unwrap(), Command::Version);
        let mut out = Vec::new();
        run(Command::Version, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("fdiam "), "{text}");
        assert!(text.contains("rev "), "{text}");
        assert!(text.contains("rustc"), "{text}");
    }

    #[test]
    fn ecc_command_output() {
        let dir = std::env::temp_dir().join("fdiam_cli_ecc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("p.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:1x9".into(),
                output: p.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let mut out = Vec::new();
        run(
            Command::Ecc {
                input: p,
                order: VertexOrder::None,
                directed: false,
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("radius     : 4"), "{text}");
        assert!(text.contains("diameter   : 8"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn info_command_output() {
        let dir = std::env::temp_dir().join("fdiam_cli_info_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.mtx").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:3x3".into(),
                output: p.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let mut out = Vec::new();
        run(Command::Info { input: p }, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("vertices          : 9"), "{text}");
        assert!(text.contains("components        : 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_order_and_lanes_flags() {
        let c = parse_args(&args(&[
            "diameter", "--order", "degree", "--lanes", "32", "g.txt",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                order: VertexOrder::Degree,
                lanes: Some(32),
                ..
            }
        ));
        // defaults: no relabeling, published one-BFS loop
        let c = parse_args(&args(&["diameter", "g.txt"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                order: VertexOrder::None,
                lanes: None,
                ..
            }
        ));
        let c = parse_args(&args(&["ecc", "--order", "bfs", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Ecc {
                input: "g.txt".into(),
                order: VertexOrder::Bfs,
                directed: false,
            }
        );
        assert!(parse_args(&args(&["diameter", "--order", "hilbert", "g.txt"])).is_err());
        assert!(parse_args(&args(&["diameter", "g.txt", "--order"])).is_err());
        assert!(parse_args(&args(&["ecc", "--order", "hilbert", "g.txt"])).is_err());
        for bad in ["0", "65", "x"] {
            let e = parse_args(&args(&["diameter", "--lanes", bad, "g.txt"])).unwrap_err();
            assert!(e.contains("lane"), "{e}");
        }
        // --lanes drives the fdiam main loop only; --order relabels the
        // input and therefore composes with every algorithm
        let e =
            parse_args(&args(&["diameter", "-a", "ifub", "--lanes", "8", "g.txt"])).unwrap_err();
        assert!(e.contains("--lanes"), "{e}");
        assert!(parse_args(&args(&[
            "diameter", "-a", "ifub", "--order", "bfs", "g.txt"
        ]))
        .is_ok());
    }

    #[test]
    fn lane_batched_run_reports_the_same_diameter() {
        let dir = std::env::temp_dir().join("fdiam_cli_lanes_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("g.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:12x12".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        for lanes in [None, Some(1), Some(64)] {
            let mut out = Vec::new();
            run(
                Command::Diameter {
                    input: el.clone(),
                    algorithm: Algorithm::FdiamSerial,
                    stats: false,
                    threads: None,
                    progress: false,
                    trace: None,
                    metrics: false,
                    paper_bfs: false,
                    timeout: None,
                    order: VertexOrder::None,
                    lanes,
                    directed: false,
                    flight_dump: None,
                },
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(text.contains("diameter : 22"), "lanes {lanes:?}: {text}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn relabeling_is_invisible_in_output_and_trace() {
        // Metamorphic: on grid:1x20 (a 20-vertex path) ecc(v) =
        // max(v, 19 - v) and the only pair at distance 19 is {0, 19}.
        // Whatever internal order the kernels ran under, every id the
        // CLI emits — the pair line and every trace event — must
        // satisfy those original-space identities.
        let dir = std::env::temp_dir().join("fdiam_cli_order_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("p.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:1x20".into(),
                output: el.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let run_one = |order: VertexOrder, trace: Option<String>| -> String {
            let mut out = Vec::new();
            run(
                Command::Diameter {
                    input: el.clone(),
                    algorithm: Algorithm::FdiamSerial,
                    stats: false,
                    threads: None,
                    progress: false,
                    trace,
                    metrics: false,
                    paper_bfs: false,
                    timeout: None,
                    order,
                    lanes: None,
                    directed: false,
                    flight_dump: None,
                },
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let diameter_line = |text: &str| -> String {
            text.lines()
                .find(|l| l.starts_with("diameter"))
                .unwrap()
                .to_string()
        };
        let base = run_one(VertexOrder::None, None);
        for order in [VertexOrder::Degree, VertexOrder::Bfs] {
            let trace = dir
                .join(format!("t_{}.jsonl", order.as_str()))
                .to_string_lossy()
                .into_owned();
            let text = run_one(order, Some(trace.clone()));
            assert_eq!(diameter_line(&text), diameter_line(&base), "{text}");
            let pair = text
                .lines()
                .find(|l| l.starts_with("pair"))
                .unwrap_or_else(|| panic!("no pair line:\n{text}"));
            let ids: Vec<u32> = pair
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            let mut ids = ids;
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 19], "{order:?}: {pair}");

            let body = std::fs::read_to_string(&trace).unwrap();
            let mut checked = 0;
            for line in body.lines() {
                let v = fdiam_obs::json::parse(line).unwrap();
                if v.get("type").and_then(|t| t.as_str()) != Some("bfs_end") {
                    continue;
                }
                let src = v.get("source").and_then(|x| x.as_u64()).unwrap() as u32;
                let ecc = v.get("eccentricity").and_then(|x| x.as_u64()).unwrap() as u32;
                assert_eq!(ecc, src.max(19 - src), "{order:?}: {line}");
                checked += 1;
            }
            assert!(
                checked >= 2,
                "{order:?}: trace had {checked} bfs_end events"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ecc_output_is_order_invariant() {
        let dir = std::env::temp_dir().join("fdiam_cli_ecc_order_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.txt").to_string_lossy().into_owned();
        run(
            Command::Generate {
                spec: "grid:5x9".into(),
                output: p.clone(),
            },
            &mut Vec::new(),
        )
        .unwrap();
        let mut texts = Vec::new();
        for order in [VertexOrder::None, VertexOrder::Degree, VertexOrder::Bfs] {
            let mut out = Vec::new();
            run(
                Command::Ecc {
                    input: p.clone(),
                    order,
                    directed: false,
                },
                &mut out,
            )
            .unwrap();
            let text = String::from_utf8(out).unwrap();
            // radius/diameter/center/periphery are properties of the
            // eccentricity multiset, which relabeling permutes but
            // never changes; only the sweep count may move.
            texts.push(
                text.lines()
                    .filter(|l| !l.starts_with("bfs calls"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        assert_eq!(texts[0], texts[1]);
        assert_eq!(texts[0], texts[2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_directed_flag() {
        // --directed forces sumsweep…
        let c = parse_args(&args(&["diameter", "--directed", "g.txt"])).unwrap();
        assert!(matches!(
            c,
            Command::Diameter {
                algorithm: Algorithm::SumSweep,
                directed: true,
                ..
            }
        ));
        // …and tolerates saying so explicitly
        assert!(parse_args(&args(&[
            "diameter",
            "--directed",
            "-a",
            "sumsweep",
            "g.txt"
        ]))
        .is_ok());
        // any other explicit algorithm is a contradiction
        for explicit in [&["-a", "fdiam"][..], &["--serial"], &["-a", "ifub"]] {
            let mut a = vec!["diameter".to_string(), "--directed".into()];
            a.extend(explicit.iter().map(|s| s.to_string()));
            a.push("g.txt".into());
            let e = parse_args(&a).unwrap_err();
            assert!(e.contains("--directed"), "{e}");
        }
        // lanes and timeout drive the directed engine; the fdiam-only
        // observability flags do not
        assert!(parse_args(&args(&["diameter", "--directed", "--lanes", "8", "g.txt"])).is_ok());
        assert!(parse_args(&args(&[
            "diameter",
            "--directed",
            "--timeout",
            "5",
            "g.txt"
        ]))
        .is_ok());
        assert!(parse_args(&args(&[
            "diameter",
            "--directed",
            "--order",
            "bfs",
            "g.txt"
        ]))
        .is_ok());
        assert!(parse_args(&args(&["diameter", "--directed", "--progress", "g.txt"])).is_err());
        assert!(parse_args(&args(&["diameter", "--directed", "--paper-bfs", "g.txt"])).is_err());
        let c = parse_args(&args(&["ecc", "--directed", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Ecc {
                input: "g.txt".into(),
                order: VertexOrder::None,
                directed: true,
            }
        );
    }

    fn diameter_directed(input: &str, lanes: Option<usize>, order: VertexOrder) -> String {
        let mut out = Vec::new();
        run(
            Command::Diameter {
                input: input.into(),
                algorithm: Algorithm::SumSweep,
                stats: true,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: None,
                order,
                lanes,
                directed: true,
                flight_dump: None,
            },
            &mut out,
        )
        .unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn directed_diameter_end_to_end() {
        let dir = std::env::temp_dir().join("fdiam_cli_directed_test");
        std::fs::create_dir_all(&dir).unwrap();
        // A directed 5-cycle: every u v line is one arc, so the
        // diameter is 4 — an undirected read would report 2.
        let cyc = dir.join("cycle.txt").to_string_lossy().into_owned();
        std::fs::write(&cyc, "0 1\n1 2\n2 3\n3 4\n4 0\n").unwrap();
        for lanes in [None, Some(1), Some(64)] {
            for order in [VertexOrder::None, VertexOrder::Degree, VertexOrder::Bfs] {
                let text = diameter_directed(&cyc, lanes, order);
                assert!(text.contains("diameter : 4"), "{lanes:?}/{order:?}: {text}");
                assert!(text.contains("radius   : 4"), "{text}");
                assert!(text.contains("sccs     : 1"), "{text}");
            }
        }
        // A directed path: not strongly connected, but vertex 0 still
        // reaches everything, so the radius stays finite.
        let path = dir.join("path.txt").to_string_lossy().into_owned();
        std::fs::write(&path, "0 1\n1 2\n2 3\n").unwrap();
        let text = diameter_directed(&path, None, VertexOrder::None);
        assert!(
            text.contains("diameter : infinite (not strongly connected)"),
            "{text}"
        );
        assert!(text.contains("radius   : 3"), "{text}");
        assert!(text.contains("central  : 0"), "{text}");
        assert!(text.contains("sccs     : 4"), "{text}");
        // Two sources: nobody reaches everything.
        let two = dir.join("two.txt").to_string_lossy().into_owned();
        std::fs::write(&two, "0 2\n1 2\n").unwrap();
        let text = diameter_directed(&two, None, VertexOrder::None);
        assert!(
            text.contains("radius   : infinite (no vertex reaches all)"),
            "{text}"
        );
        assert!(text.contains("bfs calls: 0"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directed_diameter_with_zero_timeout_reports_error() {
        let dir = std::env::temp_dir().join("fdiam_cli_directed_timeout_test");
        std::fs::create_dir_all(&dir).unwrap();
        let cyc = dir.join("cycle.txt").to_string_lossy().into_owned();
        std::fs::write(&cyc, "0 1\n1 2\n2 0\n").unwrap();
        let e = run(
            Command::Diameter {
                input: cyc,
                algorithm: Algorithm::SumSweep,
                stats: false,
                threads: None,
                progress: false,
                trace: None,
                metrics: false,
                paper_bfs: false,
                timeout: Some(std::time::Duration::ZERO),
                order: VertexOrder::None,
                lanes: None,
                directed: true,
                flight_dump: None,
            },
            &mut Vec::new(),
        )
        .unwrap_err();
        assert!(e.contains("timed out"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn directed_ecc_output() {
        let dir = std::env::temp_dir().join("fdiam_cli_directed_ecc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ecc = |arcs: &str, order: VertexOrder| -> String {
            let p = dir.join("g.txt").to_string_lossy().into_owned();
            std::fs::write(&p, arcs).unwrap();
            let mut out = Vec::new();
            run(
                Command::Ecc {
                    input: p,
                    order,
                    directed: true,
                },
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        for order in [VertexOrder::None, VertexOrder::Degree, VertexOrder::Bfs] {
            let text = ecc("0 1\n1 2\n2 3\n3 0\n", order);
            assert!(text.contains("radius     : 3"), "{order:?}: {text}");
            assert!(text.contains("diameter   : 3"), "{text}");
            assert!(text.contains("reach all  : 4"), "{text}");
        }
        let text = ecc("0 1\n1 2\n", VertexOrder::None);
        assert!(text.contains("radius     : 2"), "{text}");
        assert!(
            text.contains("diameter   : infinite (not strongly connected)"),
            "{text}"
        );
        assert!(text.contains("reach all  : 1"), "{text}");
        assert!(text.contains("reached by all: 1"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_extension_rejected() {
        assert!(read_graph("graph.xyz").is_err());
        assert!(write_graph(&fdiam_graph::CsrGraph::empty(1), "out.xyz").is_err());
    }
}
