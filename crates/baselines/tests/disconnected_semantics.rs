//! Disconnected-graph semantics across all five codes, driven through
//! the testkit oracle: a disconnected input has infinite true diameter
//! (`diameter() == None`) and every code must still report the
//! largest-CC diameter, the repo-wide convention from the paper (§1:
//! "outputs infinity as well as the diameter of the largest connected
//! component").

use fdiam_baselines::ifub::{ifub, ifub_parallel};
use fdiam_baselines::naive::naive_diameter;
use fdiam_core::{diameter_with, FdiamConfig};
use fdiam_graph::generators::{complete, cycle, grid2d, kronecker_graph500, path, star};
use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
use fdiam_graph::CsrGraph;
use fdiam_testkit::Oracle;

fn disconnected_zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("two-paths", disjoint_union(&path(9), &path(4))),
        ("cycle+clique", disjoint_union(&cycle(10), &complete(5))),
        ("grid+star", disjoint_union(&grid2d(4, 5), &star(7))),
        ("path+isolated", with_isolated_vertices(&path(12), 3)),
        ("only-isolated", CsrGraph::empty(6)),
        (
            "three-components",
            disjoint_union(&disjoint_union(&path(6), &cycle(5)), &star(4)),
        ),
        // generator-produced disconnection, not hand-assembled
        ("kron", kronecker_graph500(7, 10, 1)),
    ]
}

#[test]
fn all_five_codes_agree_on_disconnected_inputs() {
    for (name, g) in disconnected_zoo() {
        let oracle = Oracle::compute(&g);
        assert!(!oracle.connected, "{name}: zoo entry must be disconnected");
        assert_eq!(oracle.diameter(), None, "{name}: infinite diameter");
        let want = oracle.largest_cc_diameter;

        // 1–2: F-Diam serial and parallel.
        for cfg in [FdiamConfig::serial(), FdiamConfig::parallel()] {
            let r = diameter_with(&g, &cfg).result;
            assert!(r.is_infinite(), "{name}: fdiam must flag disconnection");
            assert_eq!(r.diameter(), None, "{name}");
            assert_eq!(r.largest_cc_diameter, want, "{name}");
        }
        // 3: iFUB (both kernels).
        for r in [ifub(&g), ifub_parallel(&g)] {
            assert!(!r.connected, "{name}: ifub must flag disconnection");
            assert_eq!(
                (r.diameter(), r.largest_cc_diameter),
                (None, want),
                "{name}"
            );
        }
        // 4: ExactSumSweep + bounding eccentricities.
        let r = fdiam_analytics::sum_sweep::exact_sum_sweep(&g).expect("non-empty");
        assert!(!r.connected, "{name}: sum-sweep must flag disconnection");
        assert_eq!(r.diameter, want, "{name}");
        let e = fdiam_analytics::bounding_ecc::bounding_eccentricities(&g);
        assert_eq!(
            e.eccentricities.iter().copied().max(),
            Some(want),
            "{name}: bounding-ecc max eccentricity"
        );
        assert_eq!(
            e.eccentricities, oracle.eccentricities,
            "{name}: per-component eccentricities"
        );
        // 5: naive.
        let r = naive_diameter(&g);
        assert!(!r.connected, "{name}: naive must flag disconnection");
        assert_eq!(
            (r.diameter(), r.largest_cc_diameter),
            (None, want),
            "{name}"
        );
    }
}

#[test]
fn isolated_vertices_have_eccentricity_zero_everywhere() {
    let g = with_isolated_vertices(&cycle(6), 4);
    let oracle = Oracle::compute(&g);
    assert_eq!(&oracle.eccentricities[6..], &[0, 0, 0, 0]);
    let e = fdiam_analytics::bounding_ecc::bounding_eccentricities(&g);
    assert_eq!(&e.eccentricities[6..], &[0, 0, 0, 0]);
    // Largest CC diameter is the cycle's, never polluted by the zeros.
    assert_eq!(naive_diameter(&g).largest_cc_diameter, 3);
    assert_eq!(ifub(&g).largest_cc_diameter, 3);
}

#[test]
fn single_edge_components_and_empty_graph() {
    // Degenerate corners: n = 0 (connected by convention), K2 pairs.
    let empty = CsrGraph::empty(0);
    assert!(
        diameter_with(&empty, &FdiamConfig::serial())
            .result
            .connected
    );
    assert_eq!(naive_diameter(&empty).diameter(), Some(0));
    assert_eq!(ifub(&empty).diameter(), Some(0));

    let pairs = disjoint_union(&path(2), &path(2));
    let oracle = Oracle::compute(&pairs);
    assert_eq!(oracle.largest_cc_diameter, 1);
    assert_eq!(oracle.diameter(), None);
    for r in [naive_diameter(&pairs), ifub(&pairs), ifub_parallel(&pairs)] {
        assert_eq!((r.diameter(), r.largest_cc_diameter), (None, 1));
    }
    let r = diameter_with(&pairs, &FdiamConfig::parallel()).result;
    assert_eq!((r.diameter(), r.largest_cc_diameter), (None, 1));
}
