//! Naive APSP-by-BFS diameter — `O(nm)` and exact.
//!
//! This is the "traditional approach" of the paper's introduction and
//! the oracle every other algorithm in this workspace is tested
//! against.

use crate::BaselineResult;
use fdiam_bfs::{bfs_eccentricity_serial, VisitMarks};
use fdiam_graph::CsrGraph;

/// Largest eccentricity over all components by BFS from every vertex.
pub fn naive_diameter(g: &CsrGraph) -> BaselineResult {
    let n = g.num_vertices();
    if n == 0 {
        return BaselineResult {
            largest_cc_diameter: 0,
            connected: true,
            bfs_calls: 0,
        };
    }
    let mut marks = VisitMarks::new(n);
    let mut max_ecc = 0u32;
    let mut connected = true;
    for v in g.vertices() {
        let r = bfs_eccentricity_serial(g, v, &mut marks);
        max_ecc = max_ecc.max(r.eccentricity);
        if r.visited != n {
            connected = false;
        }
    }
    BaselineResult {
        largest_cc_diameter: max_ecc,
        connected,
        bfs_calls: n,
    }
}

/// Exact eccentricity of every vertex (within its component).
pub fn all_eccentricities(g: &CsrGraph) -> Vec<u32> {
    let mut marks = VisitMarks::new(g.num_vertices());
    g.vertices()
        .map(|v| bfs_eccentricity_serial(g, v, &mut marks).eccentricity)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{cycle, path, star};
    use fdiam_graph::transform::disjoint_union;
    use fdiam_graph::CsrGraph;

    #[test]
    fn known_diameters() {
        assert_eq!(naive_diameter(&path(7)).diameter(), Some(6));
        assert_eq!(naive_diameter(&cycle(9)).diameter(), Some(4));
        assert_eq!(naive_diameter(&star(5)).diameter(), Some(2));
    }

    #[test]
    fn disconnected() {
        let g = disjoint_union(&path(4), &cycle(8));
        let r = naive_diameter(&g);
        assert!(!r.connected);
        assert_eq!(r.largest_cc_diameter, 4);
        assert_eq!(r.bfs_calls, 12);
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(naive_diameter(&CsrGraph::empty(0)).diameter(), Some(0));
        let one = naive_diameter(&CsrGraph::empty(1));
        assert_eq!(one.diameter(), Some(0));
        assert!(one.connected);
    }

    #[test]
    fn eccentricity_vector() {
        assert_eq!(all_eccentricities(&path(5)), vec![4, 3, 2, 3, 4]);
        // figure 1 of the paper: K4 minus edge B-C has eccs A=1, D=1, B=2, C=2
        let g =
            fdiam_graph::EdgeList::from_undirected(4, &[(0, 1), (0, 2), (0, 3), (3, 1), (3, 2)])
                .to_undirected_csr();
        assert_eq!(all_eccentricities(&g), vec![1, 2, 2, 1]);
    }
}
