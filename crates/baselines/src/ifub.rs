//! iFUB (iterative Fringe Upper Bound) — Crescenzi, Grossi, Habib,
//! Lanzi & Marino, *"On computing the diameter of real-world undirected
//! graphs"*, TCS 2013. The first baseline of the paper's evaluation.
//!
//! The algorithm runs 4-SWEEP to obtain a diameter lower bound and a
//! near-center start vertex `u*`, then processes the *fringe sets*
//! `F_i` (vertices at distance exactly `i` from `u*`) from the farthest
//! inwards, computing the eccentricity of every fringe vertex by BFS.
//! The invariant `ecc(v) ≤ 2i` for `v` at depth ≤ `i` lets it stop as
//! soon as the best lower bound exceeds `2(i − 1)`.
//!
//! Like the paper's harness we run iFUB per connected component and
//! report the maximum (§5: "all other tested codes support disconnected
//! graphs and report the largest eccentricity among all connected
//! components"). The serial/parallel split mirrors the paper's two
//! iFUB columns: the algorithm is identical, only the BFS kernel is
//! parallelized.

use crate::sweep::four_sweep;
use crate::BaselineResult;
use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_bfs::{
    bfs_eccentricity_hybrid, bfs_eccentricity_serial, bfs_eccentricity_serial_hybrid, BfsConfig,
    BfsScratch,
};
use fdiam_graph::{CsrGraph, VertexId};

/// Which eccentricity kernel iFUB uses for its fringe BFS traversals.
///
/// All three produce identical results (the differential harness in
/// `fdiam-testkit` asserts it); they differ only in parallelism and in
/// whether the direction-optimized bottom-up path is available.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum IfubKernel {
    /// Plain serial top-down BFS (`bfs_eccentricity_serial`).
    #[default]
    Serial,
    /// Single-threaded direction-optimized kernel
    /// (`bfs_eccentricity_serial_hybrid`) — honors the configured
    /// switch heuristic.
    SerialHybrid,
    /// Parallel direction-optimized kernel (`bfs_eccentricity_hybrid`).
    ParallelHybrid,
}

/// Options for [`ifub_with`]: kernel choice plus the BFS tuning
/// (direction-switch heuristic etc.) the hybrid kernels honor.
#[derive(Clone, Copy, Debug, Default)]
pub struct IfubOptions {
    pub kernel: IfubKernel,
    pub bfs: BfsConfig,
}

/// Serial iFUB.
pub fn ifub(g: &CsrGraph) -> BaselineResult {
    ifub_with(
        g,
        &IfubOptions {
            kernel: IfubKernel::Serial,
            bfs: BfsConfig::default(),
        },
    )
}

/// iFUB with parallel (direction-optimized) BFS traversals.
pub fn ifub_parallel(g: &CsrGraph) -> BaselineResult {
    ifub_with(
        g,
        &IfubOptions {
            kernel: IfubKernel::ParallelHybrid,
            bfs: BfsConfig::default(),
        },
    )
}

/// iFUB with an explicit kernel / heuristic configuration — the entry
/// point the differential test harness drives across the full
/// kernel × heuristic matrix.
pub fn ifub_with(g: &CsrGraph, opts: &IfubOptions) -> BaselineResult {
    let n = g.num_vertices();
    if n == 0 {
        return BaselineResult {
            largest_cc_diameter: 0,
            connected: true,
            bfs_calls: 0,
        };
    }
    let cc = fdiam_graph::components::ConnectedComponents::compute(g);
    let mut scratch = BfsScratch::new(n);
    let mut best = 0u32;
    let mut bfs_calls = 0usize;

    // Max-degree representative of every component.
    let k = cc.num_components();
    let mut rep: Vec<Option<VertexId>> = vec![None; k];
    for v in g.vertices() {
        let c = cc.component_of(v) as usize;
        match rep[c] {
            None => rep[c] = Some(v),
            Some(r) if g.degree(v) > g.degree(r) => rep[c] = Some(v),
            _ => {}
        }
    }

    for start in rep.into_iter().flatten() {
        if g.degree(start) == 0 {
            continue; // isolated vertex: eccentricity 0
        }
        let (d, calls) = ifub_component(g, start, &mut scratch, opts);
        best = best.max(d);
        bfs_calls += calls;
    }
    BaselineResult {
        largest_cc_diameter: best,
        connected: cc.is_connected(),
        bfs_calls,
    }
}

/// iFUB on the component containing `start`; returns (diameter of that
/// component, BFS traversals used).
fn ifub_component(
    g: &CsrGraph,
    start: VertexId,
    scratch: &mut BfsScratch,
    opts: &IfubOptions,
) -> (u32, usize) {
    // 4-SWEEP: lower bound + near-center start vertex (4 BFS calls).
    let fs = four_sweep(g, start);
    let mut bfs_calls = fs.bfs_calls;

    // Distance levels from the center define the fringe sets.
    let mut dist = Vec::new();
    let ecc_u = bfs_distances_serial(g, fs.center, &mut dist);
    bfs_calls += 1;
    let mut fringes: Vec<Vec<VertexId>> = vec![Vec::new(); ecc_u as usize + 1];
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE {
            fringes[d as usize].push(v as VertexId);
        }
    }

    let mut lb = fs.lower_bound.max(ecc_u);
    let mut i = ecc_u;
    let mut ub = 2 * ecc_u;
    while ub > lb && i >= 1 {
        for &v in &fringes[i as usize] {
            let e = match opts.kernel {
                IfubKernel::Serial => {
                    bfs_eccentricity_serial(g, v, scratch.marks_mut()).eccentricity
                }
                IfubKernel::SerialHybrid => {
                    bfs_eccentricity_serial_hybrid(g, v, scratch, &opts.bfs).eccentricity
                }
                IfubKernel::ParallelHybrid => {
                    bfs_eccentricity_hybrid(g, v, scratch, &opts.bfs).eccentricity
                }
            };
            bfs_calls += 1;
            lb = lb.max(e);
        }
        if lb > 2 * (i - 1) {
            return (lb, bfs_calls);
        }
        ub = 2 * (i - 1);
        i -= 1;
    }
    (lb, bfs_calls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_diameter;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let expect = naive_diameter(g);
        for r in [ifub(g), ifub_parallel(g)] {
            assert_eq!(
                r.largest_cc_diameter,
                expect.largest_cc_diameter,
                "iFUB wrong on n={} m={}",
                g.num_vertices(),
                g.num_undirected_edges()
            );
            assert_eq!(r.connected, expect.connected);
        }
    }

    #[test]
    fn shapes() {
        check(&path(13));
        check(&cycle(9));
        check(&cycle(10));
        check(&star(8));
        check(&complete(5));
        check(&grid2d(5, 8));
        check(&grid2d_torus(4, 4));
        check(&balanced_tree(3, 3));
        check(&lollipop(4, 6));
        check(&barbell(4, 2));
        check(&caterpillar(5, 2));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..4 {
            check(&erdos_renyi_gnm(70, 110, seed));
            check(&barabasi_albert(80, 2, seed));
            check(&road_like(90, 0.2, seed));
            check(&rmat(6, 3, RmatProbabilities::LONESTAR, seed));
        }
    }

    #[test]
    fn disconnected_and_isolated() {
        check(&disjoint_union(&path(7), &cycle(5)));
        check(&with_isolated_vertices(&star(4), 3));
        check(&CsrGraph::empty(4));
        check(&CsrGraph::empty(0));
        check(&path(1));
        check(&path(2));
    }

    #[test]
    fn kernel_heuristic_matrix_agrees() {
        let graphs = [
            lollipop(5, 7),
            disjoint_union(&grid2d(4, 6), &cycle(7)),
            erdos_renyi_gnm(60, 90, 7),
        ];
        let configs = [BfsConfig::default(), BfsConfig::paper_fidelity()];
        for g in &graphs {
            let expect = naive_diameter(g);
            for kernel in [
                IfubKernel::Serial,
                IfubKernel::SerialHybrid,
                IfubKernel::ParallelHybrid,
            ] {
                for bfs in configs {
                    let r = ifub_with(g, &IfubOptions { kernel, bfs });
                    assert_eq!(r.largest_cc_diameter, expect.largest_cc_diameter);
                    assert_eq!(r.connected, expect.connected);
                }
            }
        }
    }

    #[test]
    fn few_bfs_calls_when_sweep_bound_is_tight() {
        // On a balanced tree the 4-sweep lower bound equals the diameter
        // and the center's upper bound matches it, so iFUB terminates
        // after the initial sweeps — the best case that gives iFUB its
        // low Table 3 counts on some inputs (e.g. 7 on as-skitter).
        let g = balanced_tree(3, 6); // n = 1093, diameter 12
        let r = ifub(&g);
        assert_eq!(r.largest_cc_diameter, 12);
        assert!(
            r.bfs_calls <= 25,
            "iFUB used {} BFS calls on n = {}",
            r.bfs_calls,
            g.num_vertices()
        );
    }
}
