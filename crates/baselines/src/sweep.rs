//! Double-sweep and 4-SWEEP lower-bound machinery.
//!
//! A BFS from any vertex `r` finds a farthest vertex `a`; a second BFS
//! from `a` reaches a vertex `b` with `d(a, b) ≥` a strong lower bound
//! of the diameter (the *double sweep* of Magnien et al., used by
//! Graph-Diameter). iFUB refines this with *4-SWEEP* (Crescenzi et
//! al.): take the midpoint of the `a–b` path, sweep again, and use the
//! midpoint of the second path as a near-center start vertex.

use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_graph::{CsrGraph, VertexId};

/// Outcome of a double sweep from `start`.
#[derive(Clone, Debug)]
pub struct DoubleSweep {
    /// Farthest vertex from `start`.
    pub a: VertexId,
    /// Farthest vertex from `a`.
    pub b: VertexId,
    /// `d(a, b)` — a lower bound on the diameter (of `start`'s
    /// component).
    pub lower_bound: u32,
    /// Midpoint of a shortest `a`–`b` path.
    pub midpoint: VertexId,
    /// BFS traversals used (2).
    pub bfs_calls: usize,
}

/// Runs a double sweep from `start`, also locating the path midpoint.
pub fn double_sweep(g: &CsrGraph, start: VertexId) -> DoubleSweep {
    let mut dist = Vec::new();
    bfs_distances_serial(g, start, &mut dist);
    let a = argmax_reachable(&dist);
    let ecc_a = bfs_distances_serial(g, a, &mut dist);
    let b = argmax_reachable(&dist);
    let midpoint = walk_back(g, &dist, b, ecc_a / 2);
    DoubleSweep {
        a,
        b,
        lower_bound: ecc_a,
        midpoint,
        bfs_calls: 2,
    }
}

/// 4-SWEEP: two double sweeps; returns the best lower bound found and
/// a near-center vertex `u*` to start iFUB from.
#[derive(Clone, Debug)]
pub struct FourSweep {
    pub lower_bound: u32,
    /// Near-center vertex (midpoint of the second sweep's path).
    pub center: VertexId,
    /// BFS traversals used (4).
    pub bfs_calls: usize,
}

pub fn four_sweep(g: &CsrGraph, start: VertexId) -> FourSweep {
    let s1 = double_sweep(g, start);
    let s2 = double_sweep(g, s1.midpoint);
    FourSweep {
        lower_bound: s1.lower_bound.max(s2.lower_bound),
        center: s2.midpoint,
        bfs_calls: s1.bfs_calls + s2.bfs_calls,
    }
}

/// Index of the maximum finite distance (ties → lowest id). Falls back
/// to vertex 0 of the array if nothing is reachable.
fn argmax_reachable(dist: &[u32]) -> VertexId {
    let mut best = 0u32;
    let mut best_d = 0u32;
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE && d > best_d {
            best_d = d;
            best = v as VertexId;
        }
    }
    if best_d == 0 {
        // no reachable vertex beyond the source: return the source itself
        dist.iter()
            .position(|&d| d == 0)
            .map(|v| v as VertexId)
            .unwrap_or(0)
    } else {
        best
    }
}

/// Walks `steps` hops from `v` toward the BFS source along decreasing
/// distances (a shortest-path predecessor walk). Among the available
/// predecessors the highest-degree one is taken: shortest paths are
/// rarely unique, and steering toward high-degree vertices keeps the
/// walk (and hence the returned midpoint) away from the graph's
/// periphery — on a grid, a first-match rule would hug the boundary and
/// return a corner as "midpoint".
fn walk_back(g: &CsrGraph, dist: &[u32], v: VertexId, steps: u32) -> VertexId {
    let mut cur = v;
    for _ in 0..steps {
        let d = dist[cur as usize];
        debug_assert!(d != UNREACHABLE && d > 0);
        let pred = g
            .neighbors(cur)
            .iter()
            .copied()
            .filter(|&n| dist[n as usize] == d - 1)
            .max_by_key(|&n| (g.degree(n), std::cmp::Reverse(n)))
            .expect("BFS tree predecessor must exist");
        cur = pred;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdiam_graph::generators::{cycle, grid2d, path, star};
    use fdiam_graph::CsrGraph;

    #[test]
    fn double_sweep_on_path_is_tight() {
        let g = path(10);
        let s = double_sweep(&g, 4);
        assert_eq!(s.lower_bound, 9);
        // midpoint is at distance ⌊9/2⌋ = 4 from b along the path
        let mid = s.midpoint;
        assert!(mid == 4 || mid == 5);
    }

    #[test]
    fn double_sweep_on_cycle() {
        let g = cycle(12);
        let s = double_sweep(&g, 0);
        assert_eq!(s.lower_bound, 6);
    }

    #[test]
    fn midpoint_is_equidistant_on_found_path() {
        let g = grid2d(9, 9);
        let s = double_sweep(&g, 0);
        assert_eq!(s.lower_bound, 16);
        let mut dist = Vec::new();
        bfs_distances_serial(&g, s.a, &mut dist);
        assert_eq!(dist[s.b as usize], 16);
        // midpoint lies on a shortest a–b path, ⌊16/2⌋ from b
        assert_eq!(dist[s.midpoint as usize], 16 - 8);
        bfs_distances_serial(&g, s.b, &mut dist);
        assert_eq!(dist[s.midpoint as usize], 8);
    }

    #[test]
    fn four_sweep_finds_tight_bound_on_grid() {
        let g = grid2d(9, 9);
        let fs = four_sweep(&g, 0);
        assert_eq!(fs.lower_bound, 16, "4-sweep bound is exact on a grid");
        assert_eq!(fs.bfs_calls, 4);
        // No centrality guarantee exists for the 4-sweep midpoint (on
        // grids it can land far from the true center — one reason iFUB
        // struggles on grid/road inputs, paper Table 2), but it must at
        // least beat the periphery: ecc strictly below the diameter.
        let mut dist = Vec::new();
        let ecc_c = bfs_distances_serial(&g, fs.center, &mut dist);
        assert!((8..16).contains(&ecc_c), "center ecc {ecc_c} out of range");
    }

    #[test]
    fn sweep_from_isolated_vertex() {
        let g = CsrGraph::empty(3);
        let s = double_sweep(&g, 1);
        assert_eq!(s.lower_bound, 0);
        assert_eq!(s.a, 1);
        assert_eq!(s.b, 1);
        assert_eq!(s.midpoint, 1);
    }

    #[test]
    fn sweep_lower_bound_never_exceeds_diameter() {
        for seed in 0..4 {
            let g = fdiam_graph::generators::erdos_renyi_gnm(60, 100, seed);
            let diam = crate::naive::naive_diameter(&g).largest_cc_diameter;
            let s = double_sweep(&g, 0);
            assert!(s.lower_bound <= diam);
            let fs = four_sweep(&g, 0);
            assert!(fs.lower_bound <= diam);
        }
    }

    #[test]
    fn star_sweeps() {
        let g = star(6);
        let s = double_sweep(&g, 0);
        assert_eq!(s.lower_bound, 2);
    }
}
