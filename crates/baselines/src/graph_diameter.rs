//! "Graph-Diameter" — the bounding algorithm of Akiba, Iwata & Kawata,
//! *"An Exact Algorithm for Diameters of Large Real Directed Graphs"*,
//! SEA 2015 (the paper's second baseline).
//!
//! A double sweep gives the initial diameter lower bound. Every BFS
//! from a vertex `y` yields `ecc(y)` and the distances `d(y, ·)`; the
//! triangle inequality `ecc(x) ≤ d(x, y) + ecc(y)` then tightens a
//! per-vertex eccentricity upper bound across the whole graph. Vertices
//! whose upper bound drops to ≤ the diameter lower bound are skipped;
//! the remaining candidate with the loosest upper bound is processed
//! next. Each update sweeps the entire distance array — exactly the
//! "costly" full-graph bound maintenance the F-Diam paper contrasts its
//! partial-BFS Eliminate against (§1, §4.4).
//!
//! Two variants are provided. [`graph_diameter`] is faithful to how the
//! F-Diam paper ran this baseline: Akiba's code is for *directed*
//! graphs, and feeding it a symmetrized undirected graph (§5) makes it
//! run a forward and a backward BFS per processed vertex and maintain
//! both bound sets — on a symmetric graph the second direction is
//! redundant work, but it is exactly what was measured.
//! [`graph_diameter_undirected`] drops the redundant direction for an
//! algorithm-vs-algorithm comparison on equal footing.

use crate::BaselineResult;
use fdiam_bfs::distances::{bfs_distances_serial, UNREACHABLE};
use fdiam_graph::{CsrGraph, VertexId};

/// Exact diameter via eccentricity upper-bound maintenance, run the
/// way the F-Diam paper ran it: the directed algorithm on a
/// symmetrized graph (two BFS per processed vertex).
pub fn graph_diameter(g: &CsrGraph) -> BaselineResult {
    run(g, true)
}

/// The same bounding algorithm specialized to undirected graphs (one
/// BFS per processed vertex) — the strongest version of this baseline.
pub fn graph_diameter_undirected(g: &CsrGraph) -> BaselineResult {
    run(g, false)
}

fn run(g: &CsrGraph, directed_faithful: bool) -> BaselineResult {
    let n = g.num_vertices();
    if n == 0 {
        return BaselineResult {
            largest_cc_diameter: 0,
            connected: true,
            bfs_calls: 0,
        };
    }

    let mut state = Bounds {
        ub: vec![u32::MAX; n],
        processed: vec![false; n],
        lb: 0,
        bfs_calls: 0,
        dist: Vec::new(),
        directed_faithful,
    };

    // Double sweep from the max-degree vertex: process the start and the
    // farthest vertex found, giving the initial lower bound and the first
    // round of upper bounds.
    let start = g.max_degree_vertex().expect("n > 0");
    state.process(g, start);
    let connected = state.dist.iter().filter(|&&d| d != UNREACHABLE).count() == n;
    let a = state
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as VertexId)
        .unwrap_or(start);
    if a != start {
        state.process(g, a);
    }

    // Main loop: process the loosest-bounded candidate until every vertex
    // is either processed or certified ≤ lb.
    loop {
        let mut pick: Option<VertexId> = None;
        let mut pick_ub = state.lb; // candidates must strictly exceed lb
        for v in 0..n {
            if !state.processed[v] && state.ub[v] > pick_ub {
                pick_ub = state.ub[v];
                pick = Some(v as VertexId);
            }
        }
        let Some(v) = pick else { break };
        state.process(g, v);
    }
    let Bounds { lb, bfs_calls, .. } = state;

    BaselineResult {
        largest_cc_diameter: lb,
        connected,
        bfs_calls,
    }
}

/// Working state of the bounding loop.
struct Bounds {
    /// Per-vertex eccentricity upper bound (`u32::MAX` = unbounded).
    ub: Vec<u32>,
    processed: Vec<bool>,
    /// Diameter lower bound (largest eccentricity seen).
    lb: u32,
    bfs_calls: usize,
    /// Scratch distance array of the most recent BFS.
    dist: Vec<u32>,
    /// Replay the directed algorithm's redundant reverse traversal.
    directed_faithful: bool,
}

impl Bounds {
    /// BFS from `v`, then tighten every vertex's upper bound with the
    /// triangle inequality `ecc(x) ≤ d(x, v) + ecc(v)`. In
    /// directed-faithful mode the reverse traversal and its bound
    /// update run as well; on a symmetric graph they recompute the
    /// identical distances, exactly as Akiba's directed code does when
    /// fed a symmetrized input.
    fn process(&mut self, g: &CsrGraph, v: VertexId) {
        let ecc = bfs_distances_serial(g, v, &mut self.dist);
        self.bfs_calls += 1;
        self.processed[v as usize] = true;
        self.ub[v as usize] = ecc;
        self.lb = self.lb.max(ecc);
        for (x, &d) in self.dist.iter().enumerate() {
            if d != UNREACHABLE {
                self.ub[x] = self.ub[x].min(d + ecc);
            }
        }
        if self.directed_faithful {
            // reverse direction: identical on an undirected graph, but the
            // directed algorithm cannot know that
            let ecc_rev = bfs_distances_serial(g, v, &mut self.dist);
            self.bfs_calls += 1;
            debug_assert_eq!(ecc, ecc_rev);
            for (x, &d) in self.dist.iter().enumerate() {
                if d != UNREACHABLE {
                    self.ub[x] = self.ub[x].min(d + ecc_rev);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_diameter;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let expect = naive_diameter(g);
        for r in [graph_diameter(g), graph_diameter_undirected(g)] {
            assert_eq!(
                r.largest_cc_diameter,
                expect.largest_cc_diameter,
                "graph-diameter wrong on n={} m={}",
                g.num_vertices(),
                g.num_undirected_edges()
            );
            assert_eq!(r.connected, expect.connected, "connectivity flag");
        }
    }

    #[test]
    fn directed_faithful_mode_doubles_traversals() {
        let g = barabasi_albert(400, 3, 8);
        let faithful = graph_diameter(&g);
        let optimized = graph_diameter_undirected(&g);
        assert_eq!(faithful.largest_cc_diameter, optimized.largest_cc_diameter);
        assert_eq!(faithful.bfs_calls, 2 * optimized.bfs_calls);
    }

    #[test]
    fn shapes() {
        check(&path(11));
        check(&cycle(8));
        check(&cycle(9));
        check(&star(7));
        check(&complete(6));
        check(&grid2d(6, 7));
        check(&grid2d_torus(4, 5));
        check(&balanced_tree(2, 4));
        check(&lollipop(5, 4));
        check(&barbell(3, 3));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..4 {
            check(&erdos_renyi_gnm(60, 90, seed));
            check(&barabasi_albert(70, 3, seed));
            check(&road_like(80, 0.15, seed));
            check(&watts_strogatz(50, 4, 0.3, seed));
        }
    }

    #[test]
    fn disconnected() {
        check(&disjoint_union(&path(6), &star(5)));
        check(&with_isolated_vertices(&cycle(5), 2));
        check(&CsrGraph::empty(3));
        check(&CsrGraph::empty(0));
        check(&path(1));
    }

    #[test]
    fn prunes_most_vertices() {
        let g = barabasi_albert(1500, 4, 2);
        let r = graph_diameter_undirected(&g);
        assert!(
            r.bfs_calls * 2 < g.num_vertices(),
            "bounding should prune most vertices: {} BFS on n={}",
            r.bfs_calls,
            g.num_vertices()
        );
    }
}
