//! # fdiam-baselines
//!
//! The diameter algorithms F-Diam is evaluated against (§5), all
//! reimplemented from their publications on the same CSR/BFS substrate
//! so that the comparison isolates algorithmic differences:
//!
//! * [`naive`] — textbook APSP-by-BFS diameter; the test oracle.
//! * [`ifub`] — iFUB (Crescenzi et al., TCS 2013): 4-SWEEP start
//!   vertex plus fringe-set processing; serial and parallel-BFS
//!   variants, like the two iFUB columns of the paper's Table 2.
//! * [`graph_diameter`] — "Graph-Diameter" (Akiba, Iwata & Kawata,
//!   SEA 2015): double-sweep lower bound plus per-vertex eccentricity
//!   upper bounds maintained with the triangle inequality.
//! * [`korf`] — Korf (SoCS 2021): exact diameter via partial BFS
//!   traversals over a shrinking active set (related work, §2).
//! * [`sweep`] — 2-sweep / 4-sweep lower-bound machinery shared by the
//!   above.
//!
//! Every algorithm reports the same [`BaselineResult`]: the largest
//! eccentricity over all connected components, a connectivity flag
//! (disconnected ⇒ infinite true diameter), and the number of BFS
//! traversals performed (the paper's Table 3 metric).

pub mod graph_diameter;
pub mod ifub;
pub mod korf;
pub mod naive;
pub mod sweep;

/// Result of a baseline diameter computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BaselineResult {
    /// Largest eccentricity over all connected components.
    pub largest_cc_diameter: u32,
    /// Whether the graph is connected.
    pub connected: bool,
    /// Number of BFS traversals performed (Table 3 metric).
    pub bfs_calls: usize,
}

impl BaselineResult {
    /// The finite diameter, `None` when disconnected.
    pub fn diameter(&self) -> Option<u32> {
        self.connected.then_some(self.largest_cc_diameter)
    }
}
