//! Korf's partial-BFS diameter algorithm — Richard E. Korf, *"Finding
//! the Exact Diameter of a Graph with Partial Breadth-First Searches"*,
//! SoCS 2021 (related work, §2 of the F-Diam paper).
//!
//! Observation: after vertex `s` has been a BFS start, every pair
//! involving `s` is measured, so a larger distance can only arise
//! between two vertices that have *not* yet been starts. Maintaining
//! the set `S` of not-yet-started vertices, each BFS may terminate as
//! soon as all of `S` has been visited. The diameter is the maximum,
//! over all starts, of the deepest level at which a member of `S` was
//! seen.
//!
//! This performs `n − 1` (partial) traversals, so it is only practical
//! for small graphs; the F-Diam paper cites up to 5× speedup over full
//! traversals but does not adopt the technique (early termination
//! conflicts with Winnow/Eliminate). It is included here as a
//! reference implementation and cross-check.

use crate::BaselineResult;
use fdiam_bfs::VisitMarks;
use fdiam_graph::{CsrGraph, VertexId};

/// Exact diameter via Korf's shrinking-active-set partial BFS.
pub fn korf_diameter(g: &CsrGraph) -> BaselineResult {
    let n = g.num_vertices();
    if n == 0 {
        return BaselineResult {
            largest_cc_diameter: 0,
            connected: true,
            bfs_calls: 0,
        };
    }
    let mut in_s = vec![true; n];
    let mut s_size = n;
    let mut marks = VisitMarks::new(n);
    let mut diameter = 0u32;
    let mut bfs_calls = 0usize;
    let mut connected = n == 1;

    for s in 0..n as VertexId {
        if s_size <= 1 {
            break;
        }
        // Partial BFS from s: stop once every member of S has been seen.
        let epoch = marks.next_epoch();
        marks.mark(s, epoch);
        let mut frontier = vec![s];
        let mut unseen_s = s_size - usize::from(in_s[s as usize]);
        let mut level = 0u32;
        let mut deepest_s = 0u32;
        let mut total_visited = 1usize;
        while unseen_s > 0 && !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                for &nb in g.neighbors(v) {
                    if !marks.is_visited(nb, epoch) {
                        marks.mark(nb, epoch);
                        next.push(nb);
                        total_visited += 1;
                        if in_s[nb as usize] {
                            unseen_s -= 1;
                            deepest_s = level;
                        }
                    }
                }
            }
            frontier = next;
        }
        bfs_calls += 1;
        if s == 0 {
            // the first BFS runs until S (= everything else) is seen or
            // the component is exhausted, so it decides connectivity
            connected = total_visited == n;
        }
        if unseen_s > 0 {
            connected = false;
        }
        diameter = diameter.max(deepest_s);
        in_s[s as usize] = false;
        s_size -= 1;
    }

    BaselineResult {
        largest_cc_diameter: diameter,
        connected,
        bfs_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_diameter;
    use fdiam_graph::generators::*;
    use fdiam_graph::transform::{disjoint_union, with_isolated_vertices};
    use fdiam_graph::CsrGraph;

    fn check(g: &CsrGraph) {
        let expect = naive_diameter(g);
        let r = korf_diameter(g);
        assert_eq!(
            r.largest_cc_diameter,
            expect.largest_cc_diameter,
            "korf wrong on n={} m={}",
            g.num_vertices(),
            g.num_undirected_edges()
        );
        assert_eq!(r.connected, expect.connected);
    }

    #[test]
    fn shapes() {
        check(&path(9));
        check(&cycle(7));
        check(&star(6));
        check(&complete(5));
        check(&grid2d(4, 5));
        check(&lollipop(4, 3));
        check(&balanced_tree(2, 3));
    }

    #[test]
    fn random_graphs() {
        for seed in 0..3 {
            check(&erdos_renyi_gnm(50, 80, seed));
            check(&barabasi_albert(60, 2, seed));
            check(&road_like(64, 0.2, seed));
        }
    }

    #[test]
    fn disconnected() {
        check(&disjoint_union(&path(5), &cycle(4)));
        check(&with_isolated_vertices(&path(4), 2));
        check(&CsrGraph::empty(3));
        check(&CsrGraph::empty(0));
        check(&path(1));
        check(&path(2));
    }

    #[test]
    fn uses_n_minus_one_traversals() {
        let g = cycle(30);
        assert_eq!(korf_diameter(&g).bfs_calls, 29);
    }
}
