//! Cross-crate integration: every diameter algorithm in the workspace
//! (F-Diam in all configurations, iFUB serial/parallel, Graph-Diameter,
//! Korf) must agree with the naive APSP oracle on every topology class
//! of the paper's Table 1.

use f_diam::baselines::{graph_diameter, ifub, korf, naive};
use f_diam::fdiam::{diameter_with, FdiamConfig};
use f_diam::graph::generators::*;
use f_diam::graph::transform::{disjoint_union, with_isolated_vertices};
use f_diam::graph::CsrGraph;

fn check_all(g: &CsrGraph, ctx: &str) {
    let oracle = naive::naive_diameter(g);
    let d = oracle.largest_cc_diameter;
    let conn = oracle.connected;

    for (name, cfg) in [
        ("fdiam-par", FdiamConfig::parallel()),
        ("fdiam-ser", FdiamConfig::serial()),
        ("fdiam-no-winnow", FdiamConfig::parallel().without_winnow()),
        ("fdiam-no-elim", FdiamConfig::parallel().without_eliminate()),
        (
            "fdiam-no-u",
            FdiamConfig::parallel().without_max_degree_start(),
        ),
        ("fdiam-no-chain", FdiamConfig::serial().without_chain()),
    ] {
        let out = diameter_with(g, &cfg);
        assert_eq!(out.result.largest_cc_diameter, d, "{name} on {ctx}");
        assert_eq!(out.result.connected, conn, "{name} connectivity on {ctx}");
    }
    for (name, r) in [
        ("ifub", ifub::ifub(g)),
        ("ifub-par", ifub::ifub_parallel(g)),
        ("graph-diameter", graph_diameter::graph_diameter(g)),
        ("korf", korf::korf_diameter(g)),
    ] {
        assert_eq!(r.largest_cc_diameter, d, "{name} on {ctx}");
        assert_eq!(r.connected, conn, "{name} connectivity on {ctx}");
    }
}

#[test]
fn grid_class() {
    check_all(&grid2d(12, 17), "grid 12x17");
    check_all(&grid2d(1, 40), "degenerate 1-row grid");
    check_all(&grid2d_torus(5, 7), "torus 5x7 (uniform eccentricity)");
}

#[test]
fn power_law_class() {
    for seed in 0..3 {
        check_all(&barabasi_albert(200, 3, seed), &format!("ba seed {seed}"));
        check_all(
            &barabasi_albert(150, 1, seed),
            &format!("ba m=1 (tree) seed {seed}"),
        );
    }
}

#[test]
fn road_class() {
    for seed in 0..3 {
        check_all(&road_like(180, 0.1, seed), &format!("road seed {seed}"));
        check_all(
            &road_like(150, 0.0, seed),
            &format!("road tree seed {seed}"),
        );
    }
}

#[test]
fn rmat_kron_class() {
    for seed in 0..3 {
        check_all(
            &rmat(7, 4, RmatProbabilities::LONESTAR, seed),
            &format!("rmat seed {seed}"),
        );
        check_all(
            &kronecker_graph500(7, 8, seed),
            &format!("kron seed {seed}"),
        );
    }
}

#[test]
fn geometric_class() {
    for seed in 0..3 {
        check_all(
            &random_geometric(150, 0.15, seed),
            &format!("geometric seed {seed}"),
        );
    }
}

#[test]
fn small_world_class() {
    for seed in 0..3 {
        check_all(
            &watts_strogatz(120, 4, 0.1, seed),
            &format!("ws seed {seed}"),
        );
    }
}

#[test]
fn chain_heavy_shapes() {
    check_all(&caterpillar(10, 3), "caterpillar");
    check_all(&lollipop(8, 12), "lollipop");
    check_all(&barbell(6, 9), "barbell");
    check_all(&balanced_tree(2, 6), "binary tree depth 6");
    check_all(&path(101), "long path");
    check_all(&star(64), "star");
}

#[test]
fn disconnected_inputs() {
    check_all(&disjoint_union(&path(20), &cycle(9)), "path+cycle");
    check_all(
        &disjoint_union(&barabasi_albert(80, 2, 1), &grid2d(5, 5)),
        "ba+grid",
    );
    check_all(&with_isolated_vertices(&star(10), 5), "star+isolated");
    check_all(&CsrGraph::empty(7), "all isolated");
    check_all(&CsrGraph::empty(1), "single vertex");
    check_all(&CsrGraph::empty(0), "empty");
    check_all(&path(2), "single edge");
}

#[test]
fn many_small_components() {
    let mut g = path(3);
    for k in 3..12usize {
        g = disjoint_union(&g, &cycle(k));
    }
    check_all(&g, "9 cycles + path");
}
