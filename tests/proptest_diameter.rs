//! Property-based tests on the core invariants of the paper's §3
//! theorems and on agreement between all diameter implementations,
//! over arbitrary random graphs.

use f_diam::baselines::{graph_diameter, ifub, korf, naive};
use f_diam::bfs::{bfs_eccentricity_serial, VisitMarks};
use f_diam::fdiam::{diameter_with, FdiamConfig};
use f_diam::graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

/// Strategy: an arbitrary undirected graph with up to `max_n` vertices
/// and a sprinkling of random edges (possibly disconnected, possibly
/// with isolated vertices).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (1..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..max_m)
            .prop_map(move |edges| EdgeList::from_undirected(n, &edges).to_undirected_csr())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// F-Diam (serial and parallel) equals the naive oracle.
    #[test]
    fn fdiam_matches_oracle(g in arb_graph(60, 120)) {
        let oracle = naive::naive_diameter(&g);
        for cfg in [FdiamConfig::parallel(), FdiamConfig::serial()] {
            let out = diameter_with(&g, &cfg);
            prop_assert_eq!(out.result.largest_cc_diameter, oracle.largest_cc_diameter);
            prop_assert_eq!(out.result.connected, oracle.connected);
            // every vertex accounted for by exactly one stage
            prop_assert_eq!(out.stats.removed.total(), g.num_vertices());
        }
    }

    /// All baselines equal the oracle.
    #[test]
    fn baselines_match_oracle(g in arb_graph(50, 90)) {
        let oracle = naive::naive_diameter(&g);
        prop_assert_eq!(ifub::ifub(&g).largest_cc_diameter, oracle.largest_cc_diameter);
        prop_assert_eq!(
            graph_diameter::graph_diameter(&g).largest_cc_diameter,
            oracle.largest_cc_diameter
        );
        prop_assert_eq!(korf::korf_diameter(&g).largest_cc_diameter, oracle.largest_cc_diameter);
    }

    /// Theorem 1: adjacent vertices' eccentricities differ by at most 1.
    #[test]
    fn theorem1_adjacent_ecc_gap(g in arb_graph(40, 80)) {
        let eccs = naive::all_eccentricities(&g);
        for (u, v) in g.arcs() {
            let (a, b) = (eccs[u as usize] as i64, eccs[v as usize] as i64);
            prop_assert!((a - b).abs() <= 1, "ecc({u})={a} vs ecc({v})={b}");
        }
    }

    /// Theorem 2: in any component with ≥ 2 vertices, the component's
    /// diameter is attained by at least two vertices.
    #[test]
    fn theorem2_two_witnesses(g in arb_graph(40, 80)) {
        use f_diam::graph::components::ConnectedComponents;
        let eccs = naive::all_eccentricities(&g);
        let cc = ConnectedComponents::compute(&g);
        for c in 0..cc.num_components() as u32 {
            let members: Vec<u32> =
                g.vertices().filter(|&v| cc.component_of(v) == c).collect();
            if members.len() < 2 { continue; }
            let diam = members.iter().map(|&v| eccs[v as usize]).max().unwrap();
            let witnesses = members.iter().filter(|&&v| eccs[v as usize] == diam).count();
            prop_assert!(witnesses >= 2, "component {c} has {witnesses} witnesses for diam {diam}");
        }
    }

    /// Theorem 3: within a component, min eccentricity ≥ diameter / 2.
    #[test]
    fn theorem3_radius_bound(g in arb_graph(40, 80)) {
        use f_diam::graph::components::ConnectedComponents;
        let eccs = naive::all_eccentricities(&g);
        let cc = ConnectedComponents::compute(&g);
        for c in 0..cc.num_components() as u32 {
            let comp_eccs: Vec<u32> = g
                .vertices()
                .filter(|&v| cc.component_of(v) == c)
                .map(|v| eccs[v as usize])
                .collect();
            let diam = *comp_eccs.iter().max().unwrap();
            let radius = *comp_eccs.iter().min().unwrap();
            prop_assert!(2 * radius >= diam, "radius {radius} < diam {diam} / 2");
        }
    }

    /// BFS sanity: the last frontier really holds the farthest vertices.
    #[test]
    fn bfs_last_frontier_is_argmax(g in arb_graph(40, 70), src_raw in 0u32..40) {
        let n = g.num_vertices() as u32;
        let src = src_raw % n;
        let mut marks = VisitMarks::new(n as usize);
        let r = bfs_eccentricity_serial(&g, src, &mut marks);
        let mut dist = Vec::new();
        let ecc = f_diam::bfs::distances::bfs_distances_serial(&g, src, &mut dist);
        prop_assert_eq!(r.eccentricity, ecc);
        let mut expect: Vec<u32> = (0..n).filter(|&v| dist[v as usize] == ecc).collect();
        let mut got = r.last_frontier;
        expect.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Work bound: F-Diam's traversal count stays O(n) — each vertex is
    /// computed at most once, except chain tips that Chain Processing
    /// re-activates, plus one Winnow call per diameter-bound increase.
    #[test]
    fn fdiam_traversals_linear_in_n(g in arb_graph(60, 120)) {
        let out = diameter_with(&g, &FdiamConfig::serial());
        prop_assert!(out.stats.bfs_traversals() <= 2 * g.num_vertices().max(2));
    }

    /// The diameter is invariant under vertex relabeling, even though
    /// F-Diam's start vertex, winnow ball, and visit order all change.
    #[test]
    fn diameter_invariant_under_permutation(g in arb_graph(50, 100), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = g.num_vertices();
        let mut perm: Vec<u32> = (0..n as u32).collect();
        perm.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed));
        let h = f_diam::graph::transform::permute(&g, &perm);
        let a = diameter_with(&g, &FdiamConfig::parallel()).result;
        let b = diameter_with(&h, &FdiamConfig::parallel()).result;
        prop_assert_eq!(a, b);
    }

    /// Winnow cross-check: incremental extension and full re-winnow
    /// agree end-to-end on arbitrary graphs.
    #[test]
    fn rewinnow_mode_agrees(g in arb_graph(50, 100)) {
        let a = diameter_with(&g, &FdiamConfig::serial());
        let b = diameter_with(
            &g,
            &FdiamConfig { full_rewinnow: true, ..FdiamConfig::serial() },
        );
        prop_assert_eq!(a.result, b.result);
    }

    /// Randomized visit order never changes the answer.
    #[test]
    fn visit_order_irrelevant(g in arb_graph(50, 100), seed in 0u64..1000) {
        let a = diameter_with(&g, &FdiamConfig::serial());
        let b = diameter_with(
            &g,
            &FdiamConfig { visit_order_seed: Some(seed), ..FdiamConfig::serial() },
        );
        prop_assert_eq!(a.result, b.result);
    }
}
