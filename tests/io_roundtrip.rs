//! Integration: graphs survive round trips through every supported
//! format, and the computed diameter is identical before and after.

use f_diam::fdiam::diameter;
use f_diam::graph::generators::*;
use f_diam::graph::io::{binfmt, dimacs, edgelist, mtx};
use f_diam::graph::CsrGraph;

fn zoo() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("path", path(23)),
        ("grid", grid2d(6, 9)),
        ("ba", barabasi_albert(300, 3, 1)),
        ("road", road_like(250, 0.1, 2)),
        ("kron", kronecker_graph500(8, 6, 3)), // has isolated vertices
        ("empty5", CsrGraph::empty(5)),
    ]
}

#[test]
fn edge_list_preserves_diameter() {
    for (name, g) in zoo() {
        // edge lists cannot express trailing isolated vertices without
        // the min_vertices hint — pass the true count
        let mut buf = Vec::new();
        edgelist::write_edge_list(&g, &mut buf).unwrap();
        let h = edgelist::read_edge_list(&buf[..], g.num_vertices()).unwrap();
        assert_eq!(g, h, "{name}");
        assert_eq!(diameter(&g), diameter(&h), "{name}");
    }
}

#[test]
fn dimacs_preserves_diameter() {
    for (name, g) in zoo() {
        let mut buf = Vec::new();
        dimacs::write_dimacs(&g, &mut buf).unwrap();
        let h = dimacs::read_dimacs(&buf[..]).unwrap();
        assert_eq!(g, h, "{name}");
        assert_eq!(diameter(&g), diameter(&h), "{name}");
    }
}

#[test]
fn mtx_preserves_diameter() {
    for (name, g) in zoo() {
        let mut buf = Vec::new();
        mtx::write_mtx(&g, &mut buf).unwrap();
        let h = mtx::read_mtx(&buf[..]).unwrap();
        assert_eq!(g, h, "{name}");
        assert_eq!(diameter(&g), diameter(&h), "{name}");
    }
}

#[test]
fn binary_preserves_diameter() {
    for (name, g) in zoo() {
        let mut buf = Vec::new();
        binfmt::write_binary(&g, &mut buf).unwrap();
        let h = binfmt::read_binary(&buf[..]).unwrap();
        assert_eq!(g, h, "{name}");
        assert_eq!(diameter(&g), diameter(&h), "{name}");
    }
}

#[test]
fn formats_chain_into_each_other() {
    // edge list → mtx → dimacs → binary → original
    let g = barabasi_albert(200, 4, 9);
    let mut b1 = Vec::new();
    edgelist::write_edge_list(&g, &mut b1).unwrap();
    let g1 = edgelist::read_edge_list(&b1[..], 0).unwrap();
    let mut b2 = Vec::new();
    mtx::write_mtx(&g1, &mut b2).unwrap();
    let g2 = mtx::read_mtx(&b2[..]).unwrap();
    let mut b3 = Vec::new();
    dimacs::write_dimacs(&g2, &mut b3).unwrap();
    let g3 = dimacs::read_dimacs(&b3[..]).unwrap();
    let mut b4 = Vec::new();
    binfmt::write_binary(&g3, &mut b4).unwrap();
    let g4 = binfmt::read_binary(&b4[..]).unwrap();
    assert_eq!(g, g4);
}
