//! End-to-end observability: a traced F-Diam run must produce a valid
//! JSONL event stream covering every algorithm stage, with stage
//! durations that sum to no more than the total runtime, and the
//! metrics registry must expose per-BFS direction-switch counters.

use f_diam::fdiam::{diameter_with_observer, FdiamConfig};
use f_diam::graph::generators::{grid2d, star};
use f_diam::graph::transform::disjoint_union;
use f_diam::obs::json::{parse, JsonValue};
use f_diam::obs::{JsonlTraceSink, MetricsObserver, MetricsRegistry};
use std::sync::Arc;

fn traced_run(cfg: &FdiamConfig) -> (u32, Vec<JsonValue>) {
    let g = disjoint_union(&grid2d(10, 10), &grid2d(3, 3));
    let sink = JsonlTraceSink::new(Vec::new());
    let out = diameter_with_observer(&g, cfg, &sink);
    let body = String::from_utf8(sink.into_inner()).unwrap();
    let events: Vec<JsonValue> = body
        .lines()
        .map(|line| parse(line).unwrap_or_else(|e| panic!("bad JSONL ({e}): {line}")))
        .collect();
    (out.result.largest_cc_diameter, events)
}

fn event_type(v: &JsonValue) -> &str {
    v.get("type").and_then(|t| t.as_str()).expect("type field")
}

#[test]
fn trace_covers_every_stage() {
    for cfg in [FdiamConfig::serial(), FdiamConfig::parallel()] {
        let (diameter, events) = traced_run(&cfg);
        assert_eq!(diameter, 18);
        assert!(!events.is_empty());
        assert_eq!(event_type(&events[0]), "run_start");
        assert_eq!(event_type(events.last().unwrap()), "run_end");

        // ≥ 1 phase_end per stage: 2-sweep, winnow, chain, eliminate,
        // ecc-BFS (the ISSUE's acceptance criterion).
        for stage in ["two_sweep", "winnow", "chain", "eliminate", "ecc_bfs"] {
            let hits = events
                .iter()
                .filter(|e| {
                    event_type(e) == "phase_end"
                        && e.get("phase").and_then(|p| p.as_str()) == Some(stage)
                })
                .count();
            assert!(hits >= 1, "no phase_end for stage {stage}");
        }
        // BFS lifecycle present too.
        assert!(events.iter().any(|e| event_type(e) == "bfs_end"));
        assert!(events.iter().any(|e| event_type(e) == "bound_update"));
    }
}

#[test]
fn leaf_stage_durations_sum_to_at_most_total() {
    // Serial: leaf spans never overlap, so their sum is bounded by the
    // whole-run wall clock reported in run_end.
    let (_, events) = traced_run(&FdiamConfig::serial());
    let leaf_sum: u64 = events
        .iter()
        .filter(|e| {
            event_type(e) == "phase_end"
                && e.get("phase").and_then(|p| p.as_str()) != Some("two_sweep")
        })
        .map(|e| e.get("nanos").unwrap().as_u64().unwrap())
        .sum();
    let total = events
        .iter()
        .find(|e| event_type(e) == "run_end")
        .and_then(|e| e.get("nanos"))
        .and_then(|n| n.as_u64())
        .expect("run_end.nanos");
    assert!(
        leaf_sum <= total,
        "stage durations {leaf_sum}ns exceed total {total}ns"
    );
}

#[test]
fn trace_timestamps_are_monotonic() {
    let (_, events) = traced_run(&FdiamConfig::serial());
    let mut last = 0;
    for e in &events {
        let ts = e.get("ts_us").unwrap().as_u64().unwrap();
        assert!(ts >= last, "timestamps must not go backwards");
        last = ts;
    }
}

#[test]
fn metrics_expose_direction_switches_on_a_star() {
    // A star's first eccentricity BFS explodes from 1 to n-1 frontier
    // vertices, forcing a top-down → bottom-up switch.
    let g = star(200);
    let registry = Arc::new(MetricsRegistry::new());
    let observer = MetricsObserver::new(Arc::clone(&registry));
    let out = diameter_with_observer(&g, &FdiamConfig::parallel(), &observer);
    assert_eq!(out.result.largest_cc_diameter, 2);

    assert!(registry.counter("bfs.traversals").get() > 0);
    assert!(
        registry.counter("bfs.direction_switches").get() > 0,
        "per-BFS direction-switch counter must be populated"
    );
    assert!(registry.counter("bfs.levels").get() > 0);
    assert!(registry.counter("bfs.edges_scanned").get() > 0);
    let summary = registry.render_summary();
    assert!(summary.contains("bfs.direction_switches"), "{summary}");
    assert!(summary.contains("run.duration"), "{summary}");
}
